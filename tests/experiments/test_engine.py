"""The parallel experiment engine: parity, dedup, ordering, prefetch."""

import pytest

from repro.experiments import runner
from repro.experiments.diskcache import result_to_record
from repro.experiments.runner import (
    RunRequest,
    prefetch,
    run_workload,
    run_workload_profiled,
    run_workloads_parallel,
)
from repro.host.gpufs import GpufsUnsupported
from repro.workloads import Mode

#: Cheap (workload, mode) cells exercising distinct code paths, including
#: one the mode cannot execute at all.
FAST_REQUESTS = [
    RunRequest("HS", Mode.GPM),
    RunRequest("CFD", Mode.GPM),
    RunRequest("BLK", Mode.CAP_MM),
    RunRequest("gpDB (I)", Mode.GPM),
    RunRequest("gpKVS", Mode.GPUFS),
]


def _sequential_payloads(requests):
    return {req: runner._execute(req.workload, req.mode.value, req.profiled)
            for req in requests}


class TestParallelSequentialParity:
    def test_parallel_results_bit_identical_to_sequential(self):
        expected = _sequential_payloads(FAST_REQUESTS)
        runner.clear_cache()
        prefetch(FAST_REQUESTS, jobs=2)
        for req, payload in expected.items():
            if "unsupported" in payload:
                with pytest.raises(GpufsUnsupported):
                    run_workload(req.workload, req.mode)
                continue
            got = result_to_record(run_workload(req.workload, req.mode))
            assert got == payload["result"]

    def test_profiled_parity(self):
        req = RunRequest("HS", Mode.GPM, profiled=True)
        expected = runner._execute(req.workload, req.mode.value, True)
        runner.clear_cache()
        prefetch([req], jobs=2)  # single pending -> inline, still via payloads
        result, profile = run_workload_profiled("HS", Mode.GPM)
        assert result_to_record(result) == expected["result"]


class TestPrefetch:
    def test_seeds_the_memo(self):
        runner.clear_cache()
        prefetch([RunRequest("CFD", Mode.GPM)])
        key = ("CFD", Mode.GPM, runner._current_config())
        assert key in runner._cache

    def test_profiled_subsumes_plain(self):
        runner.clear_cache()
        prefetch([RunRequest("HS", Mode.GPM),
                  RunRequest("HS", Mode.GPM, profiled=True)])
        key = ("HS", Mode.GPM, runner._current_config())
        assert key in runner._cache and key in runner._profile_cache

    def test_accepts_tuples_and_generators(self):
        runner.clear_cache()
        prefetch((("CFD", "gpm"),))
        prefetch(r for r in [RunRequest("CFD", Mode.GPM)])
        assert ("CFD", Mode.GPM, runner._current_config()) in runner._cache


class TestRunWorkloadsParallel:
    def test_order_preserved_with_none_for_unsupported(self):
        runner.clear_cache()
        out = run_workloads_parallel(FAST_REQUESTS, jobs=2)
        assert len(out) == len(FAST_REQUESTS)
        for req, res in zip(FAST_REQUESTS, out):
            if req == RunRequest("gpKVS", Mode.GPUFS):
                assert res is None
            else:
                assert res.workload == req.workload
                assert res.mode == req.mode

    def test_duplicate_requests_get_identical_objects(self):
        runner.clear_cache()
        reqs = [RunRequest("HS", Mode.GPM)] * 2
        a, b = run_workloads_parallel(reqs)
        assert a is b


class TestRunAllParity:
    #: Cheap artefact subset: three bespoke + one engine-routed.
    NAMES = ["ablation_ddio", "ablation_coalescing", "figure3",
             "ablation_binomial"]

    def test_parallel_reports_byte_identical_to_sequential(self, tmp_path):
        import repro.experiments as experiments

        runner.clear_cache()
        experiments.run_all(directory=str(tmp_path / "seq"), verbose=False,
                            jobs=1, names=self.NAMES)
        runner.clear_cache()
        experiments.run_all(directory=str(tmp_path / "par"), verbose=False,
                            jobs=3, names=self.NAMES)
        for name in self.NAMES:
            seq = (tmp_path / "seq" / f"out_{name}.txt").read_bytes()
            par = (tmp_path / "par" / f"out_{name}.txt").read_bytes()
            assert seq == par, name

    def test_unknown_name_rejected(self):
        import repro.experiments as experiments

        with pytest.raises(KeyError):
            experiments.run_all(verbose=False, names=["figure99"])

    def test_warm_table_cache_skips_rebuilding(self, tmp_path, monkeypatch):
        import repro.experiments as experiments
        from repro.experiments.diskcache import ResultCache

        runner.set_disk_cache(ResultCache(str(tmp_path / "cache")))
        try:
            first = experiments.run_all(directory=str(tmp_path / "r1"),
                                        verbose=False, names=["figure3"])

            def boom():
                raise AssertionError("table cache miss: artefact rebuilt")

            monkeypatch.setitem(experiments.ALL_EXPERIMENTS, "figure3", boom)
            runner.clear_cache()
            second = experiments.run_all(directory=str(tmp_path / "r2"),
                                         verbose=False, names=["figure3"])
            assert first["figure3"].rows == second["figure3"].rows
        finally:
            runner.set_disk_cache(None)


class TestSharedEngineFacilities:
    def test_shared_pool_is_reused_and_executes(self):
        pool = runner.shared_pool(2)
        assert runner.shared_pool(2) is pool
        payloads = pool.starmap(
            runner._execute,
            [("HS", "gpm", False, runner._current_config())], chunksize=1)
        assert "result" in payloads[0]
        assert payloads[0]["wall_s"] > 0

    def test_snapshot_and_install_memo_round_trip(self):
        runner.clear_cache()
        reqs = [RunRequest("HS", Mode.GPM), RunRequest("gpKVS", Mode.GPUFS)]
        prefetch(reqs, jobs=1)
        memo = runner.snapshot_memo(reqs)
        assert len(memo) == 2
        before = result_to_record(run_workload("HS", Mode.GPM))
        runner.clear_cache()
        runner.install_memo(memo)
        assert result_to_record(run_workload("HS", Mode.GPM)) == before
        with pytest.raises(GpufsUnsupported):
            run_workload("gpKVS", Mode.GPUFS)

    def test_fresh_runs_record_timings_and_hits_do_not(self):
        runner.clear_cache()
        runner.drain_run_timings()
        prefetch([RunRequest("CFD", Mode.GPM)], jobs=1)
        timings = runner.drain_run_timings()
        assert [t["workload"] for t in timings] == ["CFD"]
        assert timings[0]["wall_s"] >= 0
        prefetch([RunRequest("CFD", Mode.GPM)], jobs=1)  # memo hit
        assert runner.drain_run_timings() == []

    def test_effective_jobs_clamps_to_available_cpus(self):
        import os

        assert runner.effective_jobs(1) == 1
        assert 1 <= runner.effective_jobs(64) <= (os.cpu_count() or 1)


class TestUnsupportedExceptionFreshness:
    def test_each_call_raises_a_distinct_exception(self):
        runner.clear_cache()
        with pytest.raises(GpufsUnsupported) as first:
            run_workload("gpKVS", Mode.GPUFS)
        with pytest.raises(GpufsUnsupported) as second:
            run_workload("gpKVS", Mode.GPUFS)
        assert first.value is not second.value
        assert first.value.reason == second.value.reason

"""Incremental checkpointing extension."""

import numpy as np
import pytest

from repro import System
from repro.core.errors import CheckpointError
from repro.extensions import DeltaCheckpoint, delta_vs_full
from repro.gpu import DeviceArray


def _payload(system, nbytes=64 * 1024, value=0.0):
    hbm = system.machine.alloc_hbm(f"p{value}", nbytes)
    arr = DeviceArray(hbm, np.float32, 0, nbytes // 4)
    arr.np[:] = value
    return arr


class TestDeltaCheckpoint:
    def test_roundtrip(self):
        system = System()
        payload = _payload(system, value=1.0)
        dcp = DeltaCheckpoint.create(system, "/pm/dcp", payload.nbytes)
        t, dirty = dcp.checkpoint(payload)
        assert dirty == dcp.n_chunks
        payload.np[:] = 0.0
        dcp.restore(payload)
        assert (payload.np == 1.0).all()

    def test_clean_checkpoint_writes_nothing(self):
        system = System()
        payload = _payload(system, value=2.0)
        dcp = DeltaCheckpoint.create(system, "/pm/dcp", payload.nbytes)
        dcp.checkpoint(payload)
        t, dirty = dcp.checkpoint(payload)  # unchanged
        assert dirty == 0
        assert dcp.master_epoch == 2  # still commits the epoch

    def test_partial_update_only_writes_dirty_chunks(self):
        system = System()
        payload = _payload(system, value=1.0)
        dcp = DeltaCheckpoint.create(system, "/pm/dcp", payload.nbytes,
                                     chunk_bytes=4096)
        dcp.checkpoint(payload)
        payload.np[:16] = 9.0  # one chunk
        t, dirty = dcp.checkpoint(payload)
        assert dirty == 1

    def test_crash_mid_checkpoint_restores_previous_epoch(self, monkeypatch):
        system = System()
        payload = _payload(system, value=1.0)
        dcp = DeltaCheckpoint.create(system, "/pm/dcp", payload.nbytes,
                                     chunk_bytes=4096)
        dcp.checkpoint(payload)  # epoch 1: all 1.0
        payload.np[:] = 2.0
        # crash before the commit: suppress the master-epoch persist
        real = system.gpu.store_and_persist_value

        def no_commit(region, offset, value, dtype=np.uint32):
            if offset == 12:
                return 0.0  # the power failed here
            return real(region, offset, value, dtype)

        monkeypatch.setattr(system.gpu, "store_and_persist_value", no_commit)
        dcp.checkpoint(payload)
        monkeypatch.undo()
        system.crash()
        dcp2 = DeltaCheckpoint(system, "/pm/dcp")
        assert dcp2.master_epoch == 1
        fresh = _payload(system, value=0.0)
        dcp2.restore(fresh)
        assert (fresh.np == 1.0).all()  # epoch 2's chunks invisible

    def test_restore_before_any_checkpoint_rejected(self):
        system = System()
        payload = _payload(system)
        dcp = DeltaCheckpoint.create(system, "/pm/dcp", payload.nbytes)
        with pytest.raises(CheckpointError):
            dcp.restore(payload)

    def test_oversized_payload_rejected(self):
        system = System()
        dcp = DeltaCheckpoint.create(system, "/pm/dcp", 4096)
        big = _payload(system, nbytes=8192)
        with pytest.raises(CheckpointError):
            dcp.checkpoint(big)


class TestDeltaVsFull:
    @pytest.fixture(scope="class")
    def table(self):
        return delta_vs_full()  # 1 MB payload, defaults

    def test_sparse_updates_win(self, table):
        assert table.rows[0][3] > 2  # 1% dirty

    def test_crossover_exists(self, table):
        speedups = table.column("delta_speedup")
        assert speedups[0] > speedups[-1]
        assert speedups[-1] < 1.5  # full-dirty pays the scattered layout

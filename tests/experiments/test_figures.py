"""Shape assertions for every reproduced figure and table.

These are the reproduction's acceptance tests: for each artefact we assert
the *qualitative* results the paper reports - who wins, by roughly what
factor, where crossovers fall - rather than absolute numbers (our substrate
is a simulator, not the authors' testbed).

The workload runs behind Figs. 9/10/12 and Table 4 are shared through the
experiment runner's cache, so this module costs one sweep, not four.
"""

import pytest

from repro.experiments import (
    checkpoint_frequency,
    cpu_only_db,
    eadr_summary,
    figure1a,
    figure1b,
    figure3,
    figure9,
    figure10,
    figure11a,
    figure11b,
    figure12,
    pattern_microbenchmark,
    table4,
    table5,
)

pytestmark = pytest.mark.filterwarnings("ignore")


@pytest.fixture(scope="module")
def fig9():
    return figure9()


@pytest.fixture(scope="module")
def fig10():
    return figure10()


class TestFigure1:
    def test_gpm_kvs_beats_every_cpu_store(self):
        t = figure1a()
        gpm_row = t.lookup("GPM-KVS", "throughput_mops")
        for store in ("Intel PmemKV", "RocksDB-PM", "MatrixKV"):
            assert gpm_row > 2 * t.lookup(store, "throughput_mops")

    def test_gpm_kvs_speedup_in_paper_band(self):
        t = figure1a()
        # paper: 2.7x - 5.8x over the CPU stores
        for store in ("Intel PmemKV", "RocksDB-PM", "MatrixKV"):
            assert 1.8 < t.lookup(store, "gpm_speedup") < 8.0

    def test_rocksdb_is_the_slowest(self):
        t = figure1a()
        assert t.lookup("RocksDB-PM", "gpm_speedup") == max(
            t.lookup(s, "gpm_speedup")
            for s in ("Intel PmemKV", "RocksDB-PM", "MatrixKV")
        )

    def test_native_apps_beat_cpu(self):
        t = figure1b()
        for row in t.rows:
            assert row[3] > 1.0  # speedup column

    def test_bfs_has_largest_cpu_gap(self):
        t = figure1b()
        assert t.lookup("BFS", "speedup") > t.lookup("SRAD", "speedup")
        assert t.lookup("BFS", "speedup") > t.lookup("PS", "speedup")
        assert t.lookup("BFS", "speedup") > 10


class TestFigure3:
    @pytest.fixture(scope="class")
    def fig3(self):
        return figure3()

    def test_cpu_plateaus_below_1_5(self, fig3):
        cpu = [r for r in fig3.rows if r[0] == "cpu"]
        assert max(r[2] for r in cpu) < 1.5

    def test_gpu_exceeds_cpu_plateau(self, fig3):
        gpu = [r for r in fig3.rows if r[0] == "gpu"]
        assert max(r[2] for r in gpu) > 3.5

    def test_gpu_plateau_not_linear(self, fig3):
        gpu = {r[1]: r[2] for r in fig3.rows if r[0] == "gpu"}
        assert gpu[2048] == pytest.approx(gpu[1024], rel=0.05)
        assert gpu[2048] <= 2 * gpu[512] + 1e-9  # saturation, not doubling

    def test_gpu_starts_below_one_cpu_thread(self, fig3):
        gpu = {r[1]: r[2] for r in fig3.rows if r[0] == "gpu"}
        assert gpu[32] < 1.0


class TestFigure9:
    def test_gpm_beats_capfs_everywhere(self, fig9):
        assert all(row[2] > 1.0 for row in fig9.rows)

    def test_gpm_beats_capmm_everywhere(self, fig9):
        assert all(row[2] > row[1] for row in fig9.rows)

    def test_capmm_beats_capfs_roughly_2x(self, fig9):
        for row in fig9.rows:
            assert 1.5 < row[1] < 3.5

    def test_bfs_is_the_headline(self, fig9):
        bfs = fig9.lookup("BFS", "gpm")
        assert bfs == max(row[2] for row in fig9.rows)
        assert bfs > 30  # paper: 85x

    def test_checkpointing_in_paper_band(self, fig9):
        for name in ("DNN", "CFD", "BLK", "HS"):
            assert 5 < fig9.lookup(name, "gpm") < 30  # paper: 11-18x

    def test_gpufs_unsupported_entries_match_paper(self, fig9):
        gpufs = {row[0]: row[3] for row in fig9.rows}
        for unsupported in ("gpKVS", "gpKVS (95:5)", "gpDB (I)", "gpDB (U)",
                            "BLK", "HS", "BFS", "PS"):
            assert gpufs[unsupported] == "*"
        for supported in ("DNN", "CFD", "SRAD"):
            assert isinstance(gpufs[supported], float)

    def test_gpufs_slower_than_capfs(self, fig9):
        for name in ("DNN", "CFD", "SRAD"):
            assert fig9.lookup(name, "gpufs") < 1.0  # paper: 0.1-0.7x


class TestFigure10:
    def test_gpm_beats_ndp_everywhere(self, fig10):
        for row in fig10.rows:
            assert row[2] >= row[1] * 0.99

    def test_ndp_max_gap_near_paper(self, fig10):
        summary = eadr_summary(fig10)
        assert 2 < summary["max_gpm_over_ndp"] < 10  # paper: up to 6x

    def test_eadr_helps_log_heavy_workloads_most(self, fig10):
        gain = {row[0]: row[3] / row[2] for row in fig10.rows}
        assert gain["gpKVS"] > gain["DNN"]
        assert gain["gpDB (U)"] > gain["CFD"]

    def test_eadr_never_hurts_gpm(self, fig10):
        for row in fig10.rows:
            assert row[3] >= row[2] * 0.99

    def test_gpm_eadr_beats_cap_eadr(self, fig10):
        summary = eadr_summary(fig10)
        assert summary["avg_gpm_eadr_over_cap_eadr"] > 2  # paper: 24x avg


class TestFigure11:
    def test_hcl_speedup_in_workloads(self):
        t = figure11a()
        kvs = t.lookup("gpKVS", "speedup")
        db = t.lookup("gpDB (U)", "speedup")
        assert 2 < kvs < 7      # paper: 3.3x
        assert 3 < db < 10      # paper: 6.1x

    def test_microbench_hcl_flat_conventional_grows(self):
        t = figure11b()
        hcl = t.column("hcl_us")
        conv = t.column("conventional_us")
        threads = t.column("threads")
        # conventional latency grows with thread count (lock serialisation)
        assert conv[-1] > 5 * conv[0]
        # HCL's absolute latency growth stays far below conventional's
        assert (conv[-1] - conv[0]) > 5 * (hcl[-1] - hcl[0])
        # HCL throughput scales: per-insert latency falls with more threads
        assert hcl[-1] / threads[-1] < hcl[0] / threads[0]
        # HCL always wins, several-fold on average (paper ~3.6x)
        ratios = [c / h for c, h in zip(conv, hcl)]
        assert min(ratios) > 1.5
        assert sum(ratios) / len(ratios) > 3


class TestFigure12:
    def test_pattern_micro_matches_measurements(self):
        t = pattern_microbenchmark()
        for row in t.rows:
            assert row[1] == pytest.approx(row[2], rel=0.02)

    def test_workload_bandwidth_ordering(self, fig9):
        t = figure12()
        bw = {row[0]: row[1] for row in t.rows}
        # streaming checkpoint workloads well above sparse transactional
        assert bw["BLK"] > 5 * bw["gpKVS"]
        assert bw["DNN"] > 5 * bw["gpKVS"]
        # BFS's random 4B updates give the lowest utilisation
        assert bw["BFS"] == min(bw.values())
        # everything below the PCIe peak
        assert all(v < 13.0 for v in bw.values())


class TestTable4:
    @pytest.fixture(scope="class")
    def t4(self):
        return table4()

    def test_kvs_write_amplification_tens(self, t4):
        assert 20 < t4.lookup("gpKVS", "write_amplification") < 60  # paper 39x

    def test_insert_near_one(self, t4):
        assert t4.lookup("gpDB (I)", "write_amplification") == pytest.approx(1.0, abs=0.3)

    def test_update_tens(self, t4):
        assert 10 < t4.lookup("gpDB (U)", "write_amplification") < 40  # paper ~20x

    def test_checkpointing_exactly_one(self, t4):
        for name in ("DNN", "CFD", "BLK", "HS"):
            assert t4.lookup(name, "write_amplification") == pytest.approx(1.0, abs=0.01)


class TestTable5:
    @pytest.fixture(scope="class")
    def t5(self):
        return table5()

    def test_all_workloads_recover(self, t5):
        assert len(t5.rows) == 7

    def test_restoration_cheaper_than_operation(self, t5):
        for row in t5.rows:
            assert row[3] < 100  # rl_pct

    def test_checkpoint_restores_cheap(self, t5):
        for name in ("DNN", "CFD", "BLK", "HS"):
            assert t5.lookup(name, "rl_pct") < 30


class TestTextResults:
    def test_checkpoint_frequency_band(self):
        t = checkpoint_frequency()
        for row in t.rows:
            assert 10 < row[4] < 200  # paper: 19% - 122%
        # less frequent checkpointing -> smaller improvement
        by = {}
        for row in t.rows:
            by.setdefault(row[0], {})[row[1]] = row[4]
        for name, vals in by.items():
            assert vals[10] > vals[20]

    def test_cpu_db_speedups(self):
        t = cpu_only_db()
        assert 1.5 < t.lookup("INSERT", "speedup") < 5     # paper 3.1x
        assert 4 < t.lookup("UPDATE", "speedup") < 10      # paper 6.9x

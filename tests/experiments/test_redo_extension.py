"""Redo-logging extension: correctness, recovery, and the latency claim."""

import numpy as np
import pytest

from repro import System
from repro.core.persist import persist_window
from repro.extensions import RedoTransaction, redo_vs_undo
from repro.extensions.redo import _stage_kernel
from repro.gpu import DeviceArray


def _setup(system, n=256, table_elems=4096):
    region = system.machine.alloc_pm("t", table_elems * 8)
    table = DeviceArray(region, np.uint64)
    hbm = system.machine.alloc_hbm("b", n * 16)
    ridx = DeviceArray(hbm, np.uint64, 0, n)
    vals = DeviceArray(hbm, np.uint64, n * 8, n)
    rng = np.random.default_rng(4)
    ridx.np[:] = rng.choice(table_elems, size=n, replace=False)
    vals.np[:] = rng.integers(1, 1 << 62, size=n, dtype=np.uint64)
    return table, ridx, vals


class TestRedoTransaction:
    def test_stage_commit_apply(self):
        system = System()
        table, ridx, vals = _setup(system)
        tx = RedoTransaction(system, "/pm/tx", 2, 128)
        with persist_window(system):
            system.gpu.launch(_stage_kernel, 2, 128, (tx, ridx, vals, 256))
        tx.commit()
        assert not table.np.any()  # homes untouched before apply
        tx.apply(table)
        assert np.array_equal(table.np[ridx.np.astype(np.int64)], vals.np)
        assert np.array_equal(table.np_persisted, table.np)

    def test_crash_after_commit_replays(self):
        system = System()
        table, ridx, vals = _setup(system)
        expected_idx = ridx.np.copy().astype(np.int64)
        expected_vals = vals.np.copy()
        tx = RedoTransaction(system, "/pm/tx", 2, 128)
        with persist_window(system):
            system.gpu.launch(_stage_kernel, 2, 128, (tx, ridx, vals, 256))
        tx.commit()
        system.crash()  # homes never written; log + flag durable
        tx.recover(table)
        assert np.array_equal(table.np[expected_idx], expected_vals)

    def test_crash_before_commit_discards(self):
        system = System()
        table, ridx, vals = _setup(system)
        tx = RedoTransaction(system, "/pm/tx", 2, 128)
        with persist_window(system):
            system.gpu.launch(_stage_kernel, 2, 128, (tx, ridx, vals, 256))
        system.crash()  # no commit flag: staged entries must be discarded
        tx.recover(table)
        assert not table.np.any()

    def test_apply_is_idempotent(self):
        system = System()
        table, ridx, vals = _setup(system)
        expected_idx = ridx.np.copy().astype(np.int64)
        expected_vals = vals.np.copy()
        tx = RedoTransaction(system, "/pm/tx", 2, 128)
        with persist_window(system):
            system.gpu.launch(_stage_kernel, 2, 128, (tx, ridx, vals, 256))
        tx.commit()
        system.crash()
        tx.recover(table)
        system.crash()
        tx.recover(table)  # flag already cleared: no-op
        assert np.array_equal(table.np[expected_idx], expected_vals)


class TestRedoVsUndo:
    @pytest.fixture(scope="class")
    def table(self):
        return redo_vs_undo(n_updates=1024)

    def test_redo_commits_faster(self, table):
        undo_commit = table.lookup("undo (libGPM default)", "commit_latency_us")
        redo_commit = table.lookup("redo (extension)", "commit_latency_us")
        assert undo_commit > 3 * redo_commit

    def test_totals_comparable(self, table):
        undo_total = table.lookup("undo (libGPM default)", "total_us")
        redo_total = table.lookup("redo (extension)", "total_us")
        assert 0.3 < redo_total / undo_total < 3

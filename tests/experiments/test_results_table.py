"""ExperimentTable plumbing."""

import os

import pytest

from repro.experiments import ExperimentTable


@pytest.fixture
def table():
    t = ExperimentTable("demo", "A demo table", ["workload", "speedup"])
    t.add("BFS", 85.0)
    t.add("PS", 11.0)
    return t


class TestTable:
    def test_add_validates_arity(self, table):
        with pytest.raises(ValueError):
            table.add("only-one")

    def test_tsv(self, table):
        tsv = table.to_tsv()
        lines = tsv.strip().split("\n")
        assert lines[0] == "workload\tspeedup"
        assert lines[1] == "BFS\t85"

    def test_text_contains_title_and_notes(self, table):
        table.notes.append("a caveat")
        text = table.to_text()
        assert "A demo table" in text
        assert "note: a caveat" in text

    def test_save(self, table, tmp_path):
        path = table.save(str(tmp_path))
        assert path.endswith("out_demo.txt")
        assert os.path.exists(path)
        with open(path) as f:
            assert f.readline().startswith("workload")

    def test_column(self, table):
        assert table.column("speedup") == [85.0, 11.0]

    def test_lookup(self, table):
        assert table.lookup("PS", "speedup") == 11.0
        with pytest.raises(KeyError):
            table.lookup("nope", "speedup")

    def test_float_formatting(self):
        t = ExperimentTable("x", "x", ["v"])
        t.add(0.123456789)
        assert "0.1235" in t.to_tsv()


class TestBars:
    def _table(self):
        from repro.experiments import ExperimentTable

        t = ExperimentTable("b", "Bars", ["w", "speedup"])
        t.add("BFS", 85.0)
        t.add("PS", 11.0)
        t.add("GPUfs", "*")
        return t

    def test_bars_render(self):
        out = self._table().to_bars("speedup")
        assert "BFS" in out and "#" in out
        lines = out.splitlines()
        bfs = next(l for l in lines if l.startswith("BFS"))
        ps = next(l for l in lines if l.startswith("PS"))
        assert bfs.count("#") > ps.count("#")

    def test_non_numeric_cells_pass_through(self):
        out = self._table().to_bars("speedup")
        assert "*" in out

    def test_log_scale_compresses(self):
        lin = self._table().to_bars("speedup")
        log = self._table().to_bars("speedup", log=True)
        ps_lin = next(l for l in lin.splitlines() if l.startswith("PS")).count("#")
        ps_log = next(l for l in log.splitlines() if l.startswith("PS")).count("#")
        assert ps_log > ps_lin

    def test_empty_column(self):
        from repro.experiments import ExperimentTable

        t = ExperimentTable("e", "E", ["w", "v"])
        t.add("x", "*")
        assert "no numeric data" in t.to_bars("v")

"""The persistent result cache: round-trips, invalidation, corruption."""

import json
import os

import pytest

from repro.experiments import runner
from repro.experiments.diskcache import (
    ResultCache,
    result_from_record,
    result_to_record,
    table_from_record,
    table_to_record,
)
from repro.experiments.results import ExperimentTable
from repro.experiments.runner import RunRequest, prefetch, run_workload
from repro.host.gpufs import GpufsUnsupported
from repro.sim.config import DEFAULT_CONFIG
from repro.workloads import Mode


@pytest.fixture
def cache(tmp_path):
    c = ResultCache(str(tmp_path / "cache"))
    runner.set_disk_cache(c)
    yield c
    runner.set_disk_cache(None)
    runner.clear_cache()


def _payload():
    return runner._execute("HS", "gpm", False)


class TestSerialization:
    def test_result_round_trip_is_exact(self):
        record = _payload()["result"]
        assert result_to_record(result_from_record(record)) == record

    def test_table_round_trip_is_exact(self):
        table = ExperimentTable("t", "Title", ["a", "b"],
                               rows=[["x", 1.5], ["y", 2]], notes=["n"])
        record = table_to_record(table)
        assert table_to_record(table_from_record(record)) == record


class TestRunCache:
    def test_warm_hit_replays_identical_result(self, cache):
        first = result_to_record(run_workload("HS", Mode.GPM))
        assert os.path.exists(cache.run_path("HS", Mode.GPM, False, DEFAULT_CONFIG))
        runner.clear_cache()  # force the disk path
        second = result_to_record(run_workload("HS", Mode.GPM))
        assert first == second

    def test_config_change_invalidates(self, cache):
        payload = _payload()
        cache.store_run("HS", Mode.GPM, False, DEFAULT_CONFIG, payload)
        other = DEFAULT_CONFIG.with_overrides(pcie_bw=1e9)
        assert cache.load_run("HS", Mode.GPM, False, other) is None
        assert cache.load_run("HS", Mode.GPM, False, DEFAULT_CONFIG) == payload

    def test_version_change_invalidates(self, cache):
        payload = _payload()
        cache.store_run("HS", Mode.GPM, False, DEFAULT_CONFIG, payload)
        newer = ResultCache(cache.directory, version="99.0")
        assert newer.load_run("HS", Mode.GPM, False, DEFAULT_CONFIG) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, cache):
        payload = _payload()
        path = cache.store_run("HS", Mode.GPM, False, DEFAULT_CONFIG, payload)
        with open(path, "w") as fh:
            fh.write('{"version": 1, "payl')  # truncated write
        assert cache.load_run("HS", Mode.GPM, False, DEFAULT_CONFIG) is None
        assert not os.path.exists(path)
        # a rerun repopulates the slot
        run_workload("HS", Mode.GPM)
        assert os.path.exists(path)

    def test_wrong_shape_entry_is_a_miss(self, cache):
        path = cache.run_path("HS", Mode.GPM, False, DEFAULT_CONFIG)
        os.makedirs(cache.directory, exist_ok=True)
        with open(path, "w") as fh:
            json.dump({"payload": {"nonsense": True}}, fh)
        assert cache.load_run("HS", Mode.GPM, False, DEFAULT_CONFIG) is None

    def test_profiled_store_seeds_plain_slot(self, cache):
        prefetch([RunRequest("HS", Mode.GPM, profiled=True)])
        assert cache.load_run("HS", Mode.GPM, False, DEFAULT_CONFIG) is not None

    def test_unsupported_marker_raises_fresh_exceptions(self, cache):
        with pytest.raises(GpufsUnsupported):
            run_workload("gpKVS", Mode.GPUFS)
        path = cache.run_path("gpKVS", Mode.GPUFS, False, DEFAULT_CONFIG)
        with open(path) as fh:
            entry = json.load(fh)
        assert isinstance(entry["payload"]["unsupported"], str)
        runner.clear_cache()  # serve the marker from disk
        with pytest.raises(GpufsUnsupported) as first:
            run_workload("gpKVS", Mode.GPUFS)
        with pytest.raises(GpufsUnsupported) as second:
            run_workload("gpKVS", Mode.GPUFS)
        assert first.value is not second.value


class TestTableCache:
    def test_store_and_load(self, cache):
        table = ExperimentTable("t", "Title", ["a"], rows=[["x"]])
        cache.store_table("t", DEFAULT_CONFIG, table)
        loaded = cache.load_table("t", DEFAULT_CONFIG)
        assert table_to_record(loaded) == table_to_record(table)

    def test_config_keyed(self, cache):
        table = ExperimentTable("t", "Title", ["a"], rows=[["x"]])
        cache.store_table("t", DEFAULT_CONFIG, table)
        other = DEFAULT_CONFIG.with_overrides(pcie_bw=1e9)
        assert cache.load_table("t", other) is None

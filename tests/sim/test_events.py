"""The hardware event bus, its subscribers, and trace round-trips."""

import json

import numpy as np
import pytest

from repro import System
from repro.core.mapping import gpm_map
from repro.core.persist import persist_window
from repro.sim import Machine, MemKind
from repro.sim.events import (
    EVENT_TYPES,
    KernelLaunch,
    OptaneEpoch,
    SystemFence,
    WarpDrain,
    event_from_record,
    event_to_record,
    stats_from_events,
)
from repro.sim.trace import ProfileSink, TraceRecorder, load_jsonl, record_events
from repro.workloads.base import Mode, measure


def _gpm_write_run(system):
    """One persist-window kernel storing + fencing to PM; returns the region."""
    pm = system.machine.alloc_pm("pm", 1 << 16)

    def kernel(ctx):
        ctx.store(pm, ctx.global_id * 8, ctx.global_id + 1, dtype=np.uint64)
        ctx.persist()

    with persist_window(system):
        system.gpu.launch(kernel, 2, 64)
    return pm


class TestEventBus:
    def test_stats_is_aggregate_of_bus(self, system):
        recorder = TraceRecorder()
        system.events.subscribe(recorder)
        _gpm_write_run(system)
        assert len(recorder) > 0
        assert stats_from_events(recorder.records) == system.stats

    def test_unsubscribe(self, machine):
        recorder = TraceRecorder()
        machine.events.subscribe(recorder)
        machine.events.unsubscribe(recorder)
        machine.alloc_pm("pm", 4096)
        assert len(recorder) == 0

    def test_timestamps_follow_clock(self, system):
        recorder = TraceRecorder()
        system.events.subscribe(recorder)
        _gpm_write_run(system)
        ts = [t for t, _ in recorder.records]
        assert ts == sorted(ts)
        assert ts[-1] <= system.clock.now

    def test_global_subscriber_sees_new_machines(self):
        with record_events() as recorder:
            system = System()
            _gpm_write_run(system)
        assert stats_from_events(recorder.records) == system.stats
        # Outside the scope, new machines are no longer observed.
        n = len(recorder)
        Machine().alloc_pm("pm", 4096)
        assert len(recorder) == n


class TestEventSemantics:
    def test_kernel_launch_and_batched_fences(self, system):
        recorder = TraceRecorder()
        system.events.subscribe(recorder)
        _gpm_write_run(system)
        launches = [e for _, e in recorder.records if isinstance(e, KernelLaunch)]
        fences = [e for _, e in recorder.records if isinstance(e, SystemFence)]
        assert len(launches) == 1
        assert sum(f.count for f in fences) == 128  # one per thread
        assert system.stats.system_fences == 128

    def test_warp_drain_carries_merged_segments(self, system):
        recorder = TraceRecorder()
        system.events.subscribe(recorder)
        _gpm_write_run(system)
        drains = [e for _, e in recorder.records if isinstance(e, WarpDrain)]
        # 128 threads / 32 lanes = 4 warps, one fenced round each; the 32
        # adjacent 8 B stores of a warp merge into one 256 B segment.
        assert len(drains) == 4
        for d in drains:
            assert d.region == "pm"
            assert d.segments == 1
            assert d.nbytes == 32 * 8
        assert sum(d.nbytes for d in drains) == system.stats.pm_bytes_written

    def test_optane_epoch_accounts_media_amplification(self, machine):
        recorder = TraceRecorder()
        machine.events.subscribe(recorder)
        pm = machine.alloc_pm("pm", 1 << 16)
        machine.set_ddio(False)
        machine.io_write_arrival(pm, [64], [64])  # partial XPLine
        epochs = [e for _, e in recorder.records if isinstance(e, OptaneEpoch)]
        assert len(epochs) == 1
        assert epochs[0].logical_bytes == 64
        assert epochs[0].media_bytes == 256
        assert epochs[0].media_time > 0


class TestSerialisation:
    def test_every_type_round_trips(self):
        for name, cls in EVENT_TYPES.items():
            event = cls()
            ts, back = event_from_record(
                json.loads(json.dumps(event_to_record(1.5, event)))
            )
            assert ts == 1.5
            assert type(back) is cls
            assert back.etype == name

    def test_numpy_payloads_become_json(self):
        event = WarpDrain(region="pm", round_no=1, segments=2, nbytes=96,
                          starts=np.array([0, 128]), lengths=np.array([64, 32]))
        record = json.loads(json.dumps(event_to_record(0.25, event)))
        assert record["starts"] == [0, 128]
        _, back = event_from_record(record)
        assert back.starts == (0, 128)
        assert back.lengths == (64, 32)


class TestTraceExport:
    def test_jsonl_reconstructs_machine_stats(self, tmp_path):
        """The acceptance property: counters are a pure fold over the trace."""
        with record_events() as recorder:
            system = System()
            _gpm_write_run(system)
            system.crash()
        path = recorder.save_jsonl(tmp_path / "run.jsonl")
        replayed = stats_from_events(load_jsonl(path))
        assert replayed == system.stats
        assert system.stats.pm_bytes_written > 0

    def test_chrome_trace_shape(self, tmp_path, system):
        recorder = TraceRecorder()
        system.events.subscribe(recorder)
        _gpm_write_run(system)
        path = recorder.save_chrome_trace(tmp_path / "trace.json")
        with open(path) as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} >= {"M", "i", "X"}
        tracks = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"gpu", "pcie", "optane", "llc", "cpu", "machine"} <= tracks
        slices = [e for e in events if e["ph"] == "X"]
        assert slices and all(e["dur"] > 0 for e in slices)
        names = {e["name"] for e in events if e["ph"] != "M"}
        assert {"kernel_launch", "warp_drain", "optane_epoch"} <= names

    def test_recorder_counts(self, system):
        recorder = TraceRecorder()
        system.events.subscribe(recorder)
        _gpm_write_run(system)
        counts = recorder.counts()
        assert counts["kernel_launch"] == 1
        assert counts["warp_drain"] == 4


class TestProfileSink:
    def test_windowed_profile_matches_window_stats(self):
        """ProfileSink's numbers equal the measured window's stats delta."""
        sink = ProfileSink()
        with record_events(sink):
            system = System()
            pm = system.machine.alloc_pm("pm", 1 << 16)

            def kernel(ctx):
                ctx.store(pm, ctx.global_id * 8, 7, dtype=np.uint64)
                ctx.persist()

            def run():
                with persist_window(system):
                    system.gpu.launch(kernel, 2, 64)

            _, window = measure(system, run)
        stats = window.stats
        assert sink.summary.fences == stats.system_fences
        assert sink.summary.pm_bytes == stats.pm_bytes_written
        assert sink.summary.pm_media_bytes == stats.pm_bytes_written_internal
        assert sink.summary.pcie_transactions == stats.pcie_transactions
        assert sink.summary.kernels == stats.kernels_launched

    def test_setup_outside_window_not_counted(self):
        sink = ProfileSink()
        with record_events(sink):
            system = System()
            pm = system.machine.alloc_pm("pm", 1 << 16)
            # Outside any window: a full streaming persist.
            system.machine.set_ddio(False)
            system.machine.io_write_arrival(pm, [0], [4096])
        assert sink.summary.pm_bytes == 0
        assert sink.summary.fences == 0

    def test_unwindowed_counts_everything(self, system):
        sink = ProfileSink(windowed=False)
        system.events.subscribe(sink)
        _gpm_write_run(system)
        assert sink.summary.pm_bytes == system.stats.pm_bytes_written


class TestRunnerProfile:
    def test_profiled_run_matches_plain_run(self):
        from repro.experiments.runner import (
            clear_cache, run_workload, run_workload_profiled,
        )

        clear_cache()
        try:
            result, profile = run_workload_profiled("PS", Mode.GPM)
            stats = result.window.stats
            assert profile.fences == stats.system_fences
            assert profile.pm_bytes == stats.pm_bytes_written
            assert profile.pm_media_bytes == stats.pm_bytes_written_internal
            assert profile.pcie_transactions == stats.pcie_transactions
            assert profile.kernels == stats.kernels_launched
            # The profiled run also seeds the plain cache - same object.
            assert run_workload("PS", Mode.GPM) is result
        finally:
            clear_cache()

    def test_cache_keyed_by_config(self, monkeypatch):
        from repro.experiments import runner
        from repro.sim import config as sim_config
        from repro.sim.config import SystemConfig

        runner.clear_cache()
        try:
            base = runner.run_workload("PS", Mode.GPM)
            # A different machine must not read the cached result.
            monkeypatch.setattr(
                sim_config, "DEFAULT_CONFIG",
                SystemConfig(pcie_rtt_s=sim_config.DEFAULT_CONFIG.pcie_rtt_s * 2),
            )
            again = runner.run_workload("PS", Mode.GPM)
            assert again is not base
        finally:
            runner.clear_cache()


class TestEventfulCrashSemantics:
    def test_crash_event_emitted(self, machine):
        recorder = TraceRecorder()
        machine.events.subscribe(recorder)
        machine.crash()
        assert recorder.counts().get("crash") == 1

    def test_gpm_map_region_events(self, system):
        recorder = TraceRecorder()
        system.events.subscribe(recorder)
        gpm_map(system, "f", 4096, create=True)
        kinds = [(e.etype, getattr(e, "kind", None)) for _, e in recorder.records
                 if e.etype == "region_alloc"]
        assert (("region_alloc", MemKind.PM.value) in kinds)


@pytest.mark.parametrize("mode", ["gpm"])
def test_trace_cli(tmp_path, capsys, mode):
    """``python -m repro trace`` writes valid JSONL + Chrome-trace files."""
    from repro.__main__ import main

    assert main(["trace", "PS", "--mode", mode, "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "events" in out
    jsonl = tmp_path / f"trace_ps_{mode}.jsonl"
    chrome = tmp_path / f"trace_ps_{mode}.json"
    assert jsonl.exists() and chrome.exists()
    replayed = stats_from_events(load_jsonl(jsonl))
    assert replayed.pm_bytes_written > 0
    assert replayed.system_fences > 0
    with open(chrome) as fh:
        doc = json.load(fh)
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]

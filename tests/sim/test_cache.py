"""LLC/DDIO model: dirty tracking, flushes, eviction, eADR crash."""

import numpy as np
import pytest

from repro.sim import Machine, SystemConfig


class TestInstallAndFlush:
    def test_install_tracks_dirty_lines(self, machine):
        r = machine.alloc_pm("x", 1024)
        machine.llc.install_writes(r, [0], [100])
        assert machine.llc.dirty_lines(r) == [0, 1]

    def test_install_on_dram_is_ignored(self, machine):
        r = machine.alloc_dram("x", 1024)
        machine.llc.install_writes(r, [0], [100])
        assert len(machine.llc) == 0

    def test_flush_range_persists_and_clears(self, machine):
        r = machine.alloc_pm("x", 1024)
        r.write_bytes(0, [7] * 100)
        machine.llc.install_writes(r, [0], [100])
        t = machine.llc.flush_range(r, 0, 100)
        assert t > 0
        assert machine.llc.dirty_lines(r) == []
        assert (r.persisted_view(np.uint8, 0, 100) == 7).all()

    def test_flush_clean_range_is_free(self, machine):
        r = machine.alloc_pm("x", 1024)
        assert machine.llc.flush_range(r, 0, 1024) == 0.0

    def test_flush_whole_line_even_for_partial_write(self, machine):
        r = machine.alloc_pm("x", 1024)
        r.write_bytes(0, [7] * 8)
        r.write_bytes(32, [9] * 8)  # same line, newer data
        machine.llc.install_writes(r, [0], [8])
        machine.llc.flush_range(r, 0, 8)
        # write-back persists the whole current line
        assert (r.persisted_view(np.uint8, 32, 8) == 9).all()

    def test_drop_range_clears_without_media(self, machine):
        r = machine.alloc_pm("x", 1024)
        machine.llc.install_writes(r, [0], [128])
        machine.llc.drop_range(r, 0, 128)
        assert len(machine.llc) == 0

    def test_hit_counting(self, machine):
        r = machine.alloc_pm("x", 1024)
        machine.llc.install_writes(r, [0], [64])
        machine.llc.install_writes(r, [0], [64])
        assert machine.stats.llc_ddio_fills == 1
        assert machine.stats.llc_ddio_hits == 1


class TestEviction:
    def test_capacity_eviction_persists_lru(self):
        cfg = SystemConfig().with_overrides(llc_ddio_bytes=4 * 64)
        machine = Machine(cfg)
        r = machine.alloc_pm("x", 1024)
        r.visible[:] = 5
        for line in range(6):
            machine.llc.install_writes(r, [line * 64], [64])
        assert len(machine.llc) == 4
        # first two lines were evicted and are now durable
        assert (r.persisted_view(np.uint8, 0, 128) == 5).all()
        assert machine.stats.llc_evictions == 2

    def test_streaming_fast_path_persists_head(self):
        cfg = SystemConfig().with_overrides(llc_ddio_bytes=1024)
        machine = Machine(cfg)
        r = machine.alloc_pm("x", 1 << 16)
        r.visible[:] = 3
        machine.llc.install_writes(r, [0], [1 << 16])
        # head written through; only the tail (<= capacity) stays cached
        assert len(machine.llc) <= 1024 // 64
        assert (r.persisted_view(np.uint8, 0, (1 << 16) - 1024) == 3).all()

    def test_streaming_fast_path_counts_lines_not_segments(self):
        # Regression: the write-through evict event reported one line per
        # *segment*; a 64 KiB stream through a 1 KiB DDIO window writes
        # 63 KiB (1008 cache lines) through, not 1.
        cfg = SystemConfig().with_overrides(llc_ddio_bytes=1024)
        machine = Machine(cfg)
        r = machine.alloc_pm("x", 1 << 16)
        machine.llc.install_writes(r, [0], [1 << 16])
        assert machine.stats.llc_evictions == ((1 << 16) - 1024) // 64

    def test_streaming_fast_path_partial_line_segments(self):
        # Two unaligned head segments spanning 2 lines each -> 4 lines.
        cfg = SystemConfig().with_overrides(llc_ddio_bytes=256)
        machine = Machine(cfg)
        r = machine.alloc_pm("x", 1 << 16)
        machine.llc.install_writes(r, [32, 4096 + 32], [576, 576])
        # tail_bytes=256 kept from the stream's end; everything earlier is
        # written through; each 576 B run spans ceil boundaries of 64 B lines
        evicted = machine.stats.llc_evictions
        # head = total (1152) - 256 = 896 bytes across two unaligned runs;
        # exact line count depends on the split, but it must far exceed the
        # 2 the per-segment accounting reported, and match the model:
        assert evicted >= 896 // 64
        assert evicted > 2


class TestCrash:
    def test_crash_without_eadr_loses_dirty_lines(self, machine):
        r = machine.alloc_pm("x", 1024)
        r.write_bytes(0, [9] * 64)
        machine.llc.install_writes(r, [0], [64])
        machine.crash()
        assert not r.visible[:64].any()

    def test_crash_with_eadr_drains_dirty_lines(self):
        machine = Machine(eadr=True)
        r = machine.alloc_pm("x", 1024)
        r.write_bytes(0, [9] * 64)
        machine.llc.install_writes(r, [0], [64])
        machine.crash()
        assert (r.visible[:64] == 9).all()


class TestTokenKeying:
    """Dirty lines are keyed by Region.token, never by id()."""

    def test_dirty_keys_use_region_tokens(self, machine):
        r = machine.alloc_pm("x", 1024)
        machine.llc.install_writes(r, [0], [64])
        assert (r.token, 0) in machine.llc._dirty

    def test_leaked_region_lines_never_alias_a_reallocation(self):
        # A mapping dropped without Machine.free leaves its dirty lines
        # behind.  Tokens are monotonic and never reused, so the stale keys
        # can never match a fresh region with the same line numbers - the
        # fresh region starts clean and its flushes are free.
        machine = Machine(SystemConfig())
        r1 = machine.alloc_pm("leak", 1024)
        machine.llc.install_writes(r1, [0], [256])
        stale = len(machine.llc)
        assert stale
        del machine._regions["leak"]
        del r1
        for i in range(8):
            r2 = machine.alloc_pm(f"fresh{i}", 1024)
            assert machine.llc.dirty_lines(r2) == []
            assert machine.llc.flush_range(r2, 0, 1024) == 0.0
            machine.free(r2)
            del r2
        # The stale lines are still attributed to the leaked region only.
        assert len(machine.llc) == stale

    def test_free_drops_lines_before_name_reuse(self, machine):
        r1 = machine.alloc_pm("x", 1024)
        machine.llc.install_writes(r1, [0], [128])
        machine.free(r1)
        r2 = machine.alloc_pm("x", 1024)
        assert machine.llc.dirty_lines(r2) == []
        assert machine.llc.flush_range(r2, 0, 1024) == 0.0

"""PCIe link model: DMA, transaction counting, bounded concurrency."""

import pytest

from repro.sim import DEFAULT_CONFIG, Machine


class TestDma:
    def test_dma_time_includes_init(self, machine):
        t = machine.pcie.dma_time(0)
        assert t == pytest.approx(DEFAULT_CONFIG.dma_init_s)

    def test_dma_bandwidth_bound(self, machine):
        nbytes = 130 << 20
        t = machine.pcie.dma_time(nbytes)
        assert t == pytest.approx(DEFAULT_CONFIG.dma_init_s + nbytes / DEFAULT_CONFIG.pcie_bw)

    def test_direction_stats(self, machine):
        machine.pcie.dma_time(100, to_gpu=False)
        machine.pcie.dma_time(200, to_gpu=True)
        assert machine.stats.pcie_bytes_to_host == 100
        assert machine.stats.pcie_bytes_to_gpu == 200

    def test_negative_rejected(self, machine):
        with pytest.raises(ValueError):
            machine.pcie.dma_time(-1)


class TestTransactionsFor:
    def test_single_aligned_segment(self, machine):
        assert machine.pcie.transactions_for([0], [128]) == 1

    def test_straddling_segment(self, machine):
        assert machine.pcie.transactions_for([64], [128]) == 2

    def test_multiple_segments(self, machine):
        assert machine.pcie.transactions_for([0, 256], [128, 128]) == 2

    def test_small_writes_each_count(self, machine):
        assert machine.pcie.transactions_for([0, 1024], [4, 4]) == 2

    def test_empty(self, machine):
        assert machine.pcie.transactions_for([], []) == 0
        assert machine.pcie.transactions_for([0], [0]) == 0


class TestFineGrainedWrites:
    def test_zero_tx_free(self, machine):
        assert machine.pcie.fine_grained_write_time(0, 0, 1) == 0.0

    def test_latency_bound_single_warp(self, machine):
        cfg = DEFAULT_CONFIG
        t = machine.pcie.fine_grained_write_time(100, 100 * 128, 1)
        conc = cfg.pcie_outstanding_per_warp
        assert t == pytest.approx(100 * cfg.pcie_rtt_s / conc)

    def test_concurrency_capped(self, machine):
        cfg = DEFAULT_CONFIG
        t_many = machine.pcie.fine_grained_write_time(1000, 1000 * 128, 1000)
        floor = 1000 * cfg.pcie_rtt_s / cfg.pcie_max_outstanding
        assert t_many == pytest.approx(max(floor, 1000 * 128 / cfg.pcie_bw))

    def test_more_warps_is_faster_until_cap(self, machine):
        t1 = machine.pcie.fine_grained_write_time(512, 512 * 128, 1)
        t4 = machine.pcie.fine_grained_write_time(512, 512 * 128, 4)
        t100 = machine.pcie.fine_grained_write_time(512, 512 * 128, 100)
        t200 = machine.pcie.fine_grained_write_time(512, 512 * 128, 200)
        assert t1 > t4 > t100
        assert t100 == pytest.approx(t200)  # both beyond pcie_max_outstanding


class TestReadTransactionRounding:
    """A read that is not a multiple of 128 B still occupies whole
    transactions (regression: floor division undercounted by one)."""

    def test_129_bytes_costs_two_transactions(self, machine):
        cfg = DEFAULT_CONFIG
        conc = cfg.pcie_outstanding_per_warp
        t = machine.pcie.read_time(129, n_warps=1)
        assert t == pytest.approx(max(2 * cfg.pcie_rtt_s / conc,
                                      129 / cfg.pcie_bw))

    def test_partial_transaction_rounds_up(self, machine):
        assert machine.pcie.read_time(129) == pytest.approx(
            machine.pcie.read_time(256))
        assert machine.pcie.read_time(129) > machine.pcie.read_time(128)

    def test_sub_transaction_read_costs_one(self, machine):
        assert machine.pcie.read_time(1) == pytest.approx(
            machine.pcie.read_time(128))


class TestStreaming:
    def test_stream_write_is_bandwidth_bound(self, machine):
        nbytes = 13 << 20
        t = machine.pcie.stream_write_time(nbytes)
        assert t == pytest.approx(nbytes / DEFAULT_CONFIG.pcie_bw)

    def test_stream_faster_than_fine_grained(self, machine):
        nbytes = 1 << 20
        n_tx = nbytes // 128
        stream = machine.pcie.stream_write_time(nbytes)
        fine = machine.pcie.fine_grained_write_time(n_tx, nbytes, 16)
        assert stream < fine

    def test_stream_read(self, machine):
        assert machine.pcie.stream_read_time(0) == 0.0
        assert machine.pcie.stream_read_time(13_000_000) == pytest.approx(1e-3)

    def test_stream_write_event_rounds_transactions_up(self, machine):
        events = []
        machine.events.subscribe(lambda t, e: events.append(e))
        machine.pcie.stream_write_time(129)
        (ev,) = [e for e in events if type(e).__name__ == "PcieWrite"]
        assert ev.transactions == 2

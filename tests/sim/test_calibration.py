"""Calibration suite: pin the substrate against the paper's measurements.

These tests anchor the simulator's emergent behaviour to the numbers the
paper reports, so workload-level experiments inherit a calibrated machine:

* the three Optane access-pattern bandwidths (Section 6.1),
* CPU persist scaling (Fig. 3a) including the 1.47x plateau,
* GPU persist scaling (Fig. 3b) plateauing near 4x one CPU thread,
* the DNN checkpoint/restore absolute latencies (Section 6.1 text).
"""

import pytest

from repro.experiments.figure3 import cpu_persist_time, gpu_persist_throughput
from repro.experiments.figure12 import pattern_microbenchmark
from repro.sim import DEFAULT_CONFIG


class TestOptanePatterns:
    @pytest.fixture(scope="class")
    def patterns(self):
        table = pattern_microbenchmark()
        return {row[0]: row[1] for row in table.rows}

    def test_sequential_aligned_12_5(self, patterns):
        assert patterns["sequential 256B-aligned"] == pytest.approx(12.5, rel=0.01)

    def test_unaligned_3_13(self, patterns):
        assert patterns["sequential unaligned (64B grain)"] == pytest.approx(3.13, rel=0.02)

    def test_random_0_72(self, patterns):
        assert patterns["random"] == pytest.approx(0.72, rel=0.02)


class TestCpuScaling:
    def test_plateau_1_47(self):
        base = cpu_persist_time(1)
        assert base / cpu_persist_time(64) == pytest.approx(1.46, abs=0.03)

    def test_monotone_not_linear(self):
        base = cpu_persist_time(1)
        s2 = base / cpu_persist_time(2)
        s16 = base / cpu_persist_time(16)
        assert 1.0 < s2 < s16 < 1.5


class TestGpuScaling:
    def test_plateau_near_4x(self):
        cpu1 = DEFAULT_CONFIG.cpu_persist_bw_single
        assert gpu_persist_throughput(2048) / cpu1 == pytest.approx(3.94, abs=0.1)

    def test_1024_matches_2048(self):
        assert gpu_persist_throughput(1024) == pytest.approx(gpu_persist_throughput(2048))

    def test_32_threads_below_one_cpu_thread(self):
        cpu1 = DEFAULT_CONFIG.cpu_persist_bw_single
        assert gpu_persist_throughput(32) < cpu1

    def test_crossover_between_128_and_512(self):
        cpu1 = DEFAULT_CONFIG.cpu_persist_bw_single
        assert gpu_persist_throughput(128) < cpu1 < gpu_persist_throughput(512)

    def test_monotone_in_threads(self):
        vals = [gpu_persist_throughput(t) for t in (32, 64, 128, 256, 512, 1024)]
        assert vals == sorted(vals)


class TestCheckpointLatency:
    """Section 6.1: 3.2 MB DNN checkpoint ~0.221 ms, restore ~0.342 ms."""

    def test_checkpoint_within_2x_of_paper(self):
        import numpy as np

        from repro import System
        from repro.core import gpmcp_create, gpmcp_register

        system = System()
        hbm = system.machine.alloc_hbm("w", 3_200_000)
        cp = gpmcp_create(system, "/cp", 3_200_000, 1, 1)
        gpmcp_register(cp, hbm, size=3_200_000, group=0)
        t = cp.checkpoint(0)
        assert 0.221e-3 / 2 < t < 0.221e-3 * 2

    def test_restore_within_2x_of_paper(self):
        from repro import System
        from repro.core import gpmcp_create, gpmcp_register

        system = System()
        hbm = system.machine.alloc_hbm("w", 3_200_000)
        cp = gpmcp_create(system, "/cp", 3_200_000, 1, 1)
        gpmcp_register(cp, hbm, size=3_200_000, group=0)
        cp.checkpoint(0)
        t = cp.restore(0)
        assert 0.342e-3 / 2 < t < 0.342e-3 * 2

"""Machine composition: allocation, write routing, DDIO, crash."""

import numpy as np
import pytest

from repro.sim import Machine, MemKind


class TestAllocation:
    def test_alloc_and_lookup(self, machine):
        r = machine.alloc_pm("a", 128)
        assert machine.region("a") is r
        assert machine.has_region("a")

    def test_duplicate_name_rejected(self, machine):
        machine.alloc_pm("a", 128)
        with pytest.raises(ValueError):
            machine.alloc_dram("a", 128)

    def test_free(self, machine):
        r = machine.alloc_hbm("a", 128)
        machine.free(r)
        assert not machine.has_region("a")

    def test_free_unknown_raises(self, machine):
        r = machine.alloc_hbm("a", 128)
        machine.free(r)
        with pytest.raises(KeyError):
            machine.free(r)

    def test_kinds(self, machine):
        assert machine.alloc_pm("p", 8).kind is MemKind.PM
        assert machine.alloc_dram("d", 8).kind is MemKind.DRAM
        assert machine.alloc_hbm("h", 8).kind is MemKind.HBM


class TestIoWriteRouting:
    def test_ddio_on_parks_in_llc(self, machine):
        r = machine.alloc_pm("p", 1024)
        r.write_bytes(0, [1] * 64)
        t = machine.io_write_arrival(r, [0], [64])
        assert t == 0.0
        assert machine.llc.dirty_lines(r) == [0]
        assert r.unpersisted_bytes() == 64

    def test_ddio_off_goes_to_media(self, machine):
        machine.set_ddio(False)
        r = machine.alloc_pm("p", 1024)
        r.write_bytes(0, [1] * 64)
        t = machine.io_write_arrival(r, [0], [64])
        assert t > 0.0
        assert r.unpersisted_bytes() == 0
        assert machine.stats.pm_bytes_written_by_gpu == 64

    def test_dram_target_is_untracked(self, machine):
        r = machine.alloc_dram("d", 1024)
        assert machine.io_write_arrival(r, [0], [64]) == 0.0
        assert machine.stats.dram_bytes_written == 64

    def test_hbm_target_rejected(self, machine):
        r = machine.alloc_hbm("h", 1024)
        with pytest.raises(ValueError):
            machine.io_write_arrival(r, [0], [64])


class TestCpuPaths:
    def test_cpu_store_dirties_llc(self, machine):
        r = machine.alloc_pm("p", 1024)
        machine.cpu_store_arrival(r, 0, 64)
        assert machine.llc.dirty_lines(r) == [0]

    def test_cpu_flush_persists(self, machine):
        r = machine.alloc_pm("p", 1024)
        r.write_bytes(0, [4] * 64)
        machine.cpu_store_arrival(r, 0, 64)
        t = machine.cpu_flush(r, 0, 64)
        assert t > 0
        assert r.unpersisted_bytes() == 0

    def test_nt_store_bypasses_cache(self, machine):
        r = machine.alloc_pm("p", 1024)
        r.write_bytes(0, [4] * 64)
        t = machine.cpu_nt_store_arrival(r, [0], [64])
        assert t > 0
        assert len(machine.llc) == 0
        assert r.unpersisted_bytes() == 0

    def test_cpu_store_to_hbm_rejected(self, machine):
        r = machine.alloc_hbm("h", 64)
        with pytest.raises(ValueError):
            machine.cpu_store_arrival(r, 0, 8)


class TestDdioToggle:
    def test_default_on(self, machine):
        assert machine.ddio_enabled

    def test_toggle(self, machine):
        machine.set_ddio(False)
        assert not machine.ddio_enabled
        machine.set_ddio(True)
        assert machine.ddio_enabled


class TestCrash:
    def test_crash_resets_all_regions(self, machine):
        pm = machine.alloc_pm("p", 64)
        hbm = machine.alloc_hbm("h", 64)
        pm.write_bytes(0, [1] * 8)
        hbm.write_bytes(0, [1] * 8)
        machine.crash()
        assert not pm.visible.any()
        assert hbm.lost
        assert machine.crash_count == 1

    def test_crash_reenables_ddio(self, machine):
        machine.set_ddio(False)
        machine.crash()
        assert machine.ddio_enabled

    def test_drop_volatile_regions(self, machine):
        machine.alloc_pm("p", 64)
        machine.alloc_hbm("h", 64)
        machine.crash()
        machine.drop_volatile_regions()
        assert machine.has_region("p")
        assert not machine.has_region("h")

    def test_background_persist_requires_eadr(self, machine):
        r = machine.alloc_pm("p", 64)
        with pytest.raises(RuntimeError):
            machine.background_persist(r, 0, 8)

    def test_background_persist_on_eadr(self):
        machine = Machine(eadr=True)
        r = machine.alloc_pm("p", 64)
        r.write_bytes(0, [2] * 8)
        machine.background_persist(r, 0, 8)
        assert r.unpersisted_bytes() == 0

"""Bulk-path parity: copy elision must be observationally invisible.

Every workload that rides the zero-copy bulk paths (deferred CAP bounce
fills, chained checkpoint staging, ``stream_copy`` lowering) runs twice
from identical seeds - once with elision active (the default), once with
``REPRO_NO_BULK_ELISION=1`` forcing the eager reference path - and the two
runs must agree on everything an experiment can observe: elapsed simulated
time, the full timestamped event stream, persisted and visible memory
images byte for byte, and the golden-report record.

The only tolerated divergence is the *visible* image of engine-private
staging buffers (the CAP bounce, the checkpoint staging block): after a
pipeline's last stage consumes a deferred fill, the staging bytes are dead
and are deliberately never materialised - their stale contents are exactly
the point of the elision.  Nothing reads them, so they are excluded from
the visible comparison (they are volatile, so there is no persisted image
to compare either).
"""

import os

import numpy as np
import pytest

from repro.check import CrashExplorer
from repro.check.litmus import SEED_CORPUS
from repro.experiments.diskcache import result_to_record
from repro.sim import bulk, event_to_record
from repro.workloads.base import Mode, make_system
from repro.workloads.bfs import BfsConfig, GraphBfs
from repro.workloads.blackscholes import BlackScholes
from repro.workloads.dnn import DnnTraining

#: Engine-private staging regions whose visible bytes legitimately go
#: stale under elision (see module docstring).
_STAGING_PREFIXES = ("cap-bounce-", "hbm:")


def _is_staging(name: str) -> bool:
    return name.startswith(_STAGING_PREFIXES)


def _run_collected(factory, mode, elide):
    """Run a fresh workload instance, collecting the full event stream."""
    workload = factory()
    system = make_system(mode)
    events = []
    system.events.subscribe(
        lambda ts, ev: events.append(event_to_record(ts, ev))
    )
    env = dict(os.environ)
    if elide:
        os.environ.pop(bulk.NO_ELISION_ENV, None)
    else:
        os.environ[bulk.NO_ELISION_ENV] = "1"
    try:
        result = workload.run(mode, system=system)
    finally:
        os.environ.clear()
        os.environ.update(env)
    regions = {
        name: (region.visible.copy(),
               None if region.persisted is None else region.persisted.copy())
        for name, region in system.machine._regions.items()
    }
    return result, events, regions


CASES = [
    # BFS: per-level CAP persists through the bounce buffer, scatter
    # stores, and the commit-record write - the densest bulk-path user.
    ("bfs", lambda: GraphBfs(BfsConfig(rows=16, cols=24, engine="kernel")),
     [Mode.GPM, Mode.GPM_EADR, Mode.CAP_MM]),
    # DNN: gpmcp under GPM, staged stream_copy + CAP pipeline under CAP -
    # the chained staging-fill -> bounce-fill elision.
    ("dnn", lambda: DnnTraining(batch_size=16, dataset_size=64),
     [Mode.GPM, Mode.GPM_EADR, Mode.CAP_MM]),
    # BLK: large whole-buffer checkpoints, the pure bulk-bandwidth case.
    ("blk", lambda: BlackScholes(n_options=16384),
     [Mode.GPM, Mode.CAP_MM]),
]

PARAMS = [
    pytest.param(factory, mode, id=f"{label}-{mode.value}")
    for label, factory, modes in CASES
    for mode in modes
]


@pytest.mark.parametrize("factory,mode", PARAMS)
def test_elision_is_bit_identical(factory, mode):
    r_ref, ev_ref, regions_ref = _run_collected(factory, mode, elide=False)
    r_el, ev_el, regions_el = _run_collected(factory, mode, elide=True)
    # Identical simulated outcome and golden-report record.
    assert r_ref.elapsed == r_el.elapsed
    assert result_to_record(r_ref) == result_to_record(r_el)
    # Identical event streams, timestamps included.
    assert ev_ref == ev_el
    # Identical memory state: every surviving region, both images.
    assert regions_ref.keys() == regions_el.keys()
    for name in regions_ref:
        vis_ref, per_ref = regions_ref[name]
        vis_el, per_el = regions_el[name]
        if per_ref is None or per_el is None:
            assert per_ref is per_el, f"persistence kind differs: {name}"
        else:
            assert np.array_equal(per_ref, per_el), \
                f"persisted image differs: {name}"
        if _is_staging(name):
            # Dead staging bytes: visible divergence is the elision working.
            assert per_ref is None, f"staging region {name} must be volatile"
            continue
        assert np.array_equal(vis_ref, vis_el), f"visible image differs: {name}"


def test_staging_exclusion_is_not_vacuous():
    # The CAP cases must actually produce a bounce buffer, or the staging
    # carve-out above silently tests nothing.
    _, _, regions = _run_collected(
        lambda: BlackScholes(n_options=16384), Mode.CAP_MM, elide=True)
    assert any(_is_staging(name) for name in regions), \
        "no staging regions seen under CAP - exclusion list is stale"


def test_crash_frontier_count_unchanged_by_elision(monkeypatch):
    # repro.check walks the same crash space either way: deferred fills are
    # dropped on crash exactly like unpersisted eager stores, so the
    # frontier count stays pinned at the seed-corpus value.
    monkeypatch.delenv(bulk.NO_ELISION_ENV, raising=False)
    n_elided = len(CrashExplorer("checkpointed-dnn").record())
    monkeypatch.setenv(bulk.NO_ELISION_ENV, "1")
    n_reference = len(CrashExplorer("checkpointed-dnn").record())
    assert n_elided == n_reference == SEED_CORPUS["checkpointed-dnn"]

"""Seeded-random property tests over every registered persistency model.

No hypothesis dependency: programs are drawn from ``random.Random`` with
fixed seeds, so failures replay exactly.  Two families of properties:

* **round monotonicity** - for every model, the drain rounds a warp
  delivers arrive in non-decreasing round order, and each thread's fence
  rounds only ever grow (the engine's flush sorts rounds; the sentinel
  ``"fence-order"`` mutant is precisely a violation of this property);
* **epoch announcement** - ``EpochBoundary`` events appear on the bus iff
  the model declares epoch semantics (``declares_epochs``), and their
  epoch numbers strictly increase.
"""

import random

import numpy as np
import pytest

from repro.core.persist import persist_window
from repro.sim.events import EpochBoundary, WarpDrain
from repro.sim.persistency import (
    MODEL_REGISTRY,
    SENTINEL_MUTANTS,
    activate_mutant,
    active_mutant,
    known_models,
    make_model,
    sentinel_mutant,
)
from repro.system import System

MODELS = sorted(known_models())
SEEDS = [0, 1, 2]

#: implicit-round sentinel the engine uses for unfenced retirement drains
IMPLICIT = 1 << 30


def _random_program(rng: random.Random):
    """A small random store/fence program: (n_threads, steps)."""
    n_threads = rng.choice((4, 8))
    steps = []
    slot = 0
    for _ in range(rng.randint(2, 8)):
        if rng.random() < 0.6:
            steps.append(("write", slot))
            slot += n_threads
        else:
            steps.append(("fence",))
    steps.append(("write", slot))  # at least one unfenced tail store
    return n_threads, steps


def _run_program(model_name: str, seed: int):
    """Run one random program under ``model_name``; return the events."""
    rng = random.Random(f"props:{model_name}:{seed}")
    n_threads, steps = _random_program(rng)
    system = System(persistency=make_model(model_name))
    region = system.machine.alloc_pm("/pm/props", 65536)
    events = []
    system.events.subscribe(lambda ts, ev: events.append(ev))

    def kernel(ctx):
        t = ctx.thread_in_block
        for step in steps:
            if step[0] == "write":
                ctx.store(region, (step[1] + t) * 64, t + 1, np.uint32)
            else:
                ctx.persist()

    with persist_window(system):
        system.gpu.launch(kernel, 1, n_threads)
    return events


@pytest.mark.parametrize("model_name", MODELS)
@pytest.mark.parametrize("seed", SEEDS)
def test_warp_drain_rounds_are_monotone(model_name, seed):
    rounds = [ev.round_no for ev in _run_program(model_name, seed)
              if isinstance(ev, WarpDrain)]
    assert rounds, "the program always stores something"
    # Implicit (retirement) rounds render as -1 but deliver last.
    normalized = [IMPLICIT if r == -1 else r for r in rounds]
    assert normalized == sorted(normalized)


@pytest.mark.parametrize("model_name", MODELS)
@pytest.mark.parametrize("seed", SEEDS)
def test_epoch_boundaries_iff_model_declares_epochs(model_name, seed):
    model = make_model(model_name)
    events = _run_program(model_name, seed)
    boundaries = [ev for ev in events if isinstance(ev, EpochBoundary)]
    if model.declares_epochs:
        # Every program fences at least implicitly via retirement, but a
        # boundary needs a *dirty* epoch: one explicit fence suffices, and
        # kernel completion always closes the last dirty epoch.
        has_fence = any(isinstance(ev, WarpDrain) and ev.round_no != -1
                        for ev in events)
        assert bool(boundaries) == has_fence
    else:
        assert boundaries == []
    epochs = [b.epoch for b in boundaries]
    assert epochs == sorted(set(epochs)), "epoch numbers strictly increase"


@pytest.mark.parametrize("model_name", MODELS)
def test_advance_epoch_is_strictly_increasing(model_name):
    model = make_model(model_name)
    epoch = 1
    for _ in range(10):
        nxt = model.advance_epoch(epoch)
        assert nxt == epoch + 1
        epoch = nxt


def test_ordering_predicates_partition_the_policies():
    for name in MODELS:
        model = make_model(name)
        assert not (model.orders_rounds() and model.orders_epochs())
        assert model.orders_rounds() == (model.fence_policy == "strict")
        assert model.orders_epochs() == (model.fence_policy == "epoch")
        assert model.declares_epochs == model.orders_epochs()


def test_durable_on_delivery_matches_domain():
    for name in MODELS:
        model = make_model(name)
        if model.eadr:
            assert model.durable_on_delivery(True)
            assert model.durable_on_delivery(False)
        else:
            assert model.durable_on_delivery(True) == model.toggles_ddio
            assert not model.durable_on_delivery(False)


# ---------------------------------------------------------------------------
# the sentinel-mutant registry itself
# ---------------------------------------------------------------------------


class TestSentinelRegistry:
    def test_unknown_mutant_rejected(self):
        with pytest.raises(ValueError, match="fence-order"):
            activate_mutant("rowhammer")
        assert active_mutant() is None

    def test_context_manager_restores_previous(self):
        assert active_mutant() is None
        with sentinel_mutant("fence-order"):
            assert active_mutant() == "fence-order"
            with sentinel_mutant(None):
                assert active_mutant() is None
            assert active_mutant() == "fence-order"
        assert active_mutant() is None

    def test_epoch_boundary_mutant_suppresses_advance(self):
        epoch_model = make_model("epoch")
        with sentinel_mutant("epoch-boundary"):
            assert epoch_model.advance_epoch(3) == 3
            # Non-epoch models are untouched by this mutant.
            assert make_model("strict").advance_epoch(3) == 4
        assert epoch_model.advance_epoch(3) == 4

    def test_both_sentinels_registered(self):
        assert set(SENTINEL_MUTANTS) == {"fence-order", "epoch-boundary"}

    @pytest.mark.parametrize("mutant", sorted(SENTINEL_MUTANTS))
    def test_mutants_violate_monotonicity_observably(self, mutant):
        # The properties above are exactly what the mutants break: armed,
        # at least one model/seed must fail one of them - otherwise the
        # litmus fuzzer's self-check would be vacuous.
        broken = False
        with sentinel_mutant(mutant):
            for model_name in MODELS:
                for seed in SEEDS:
                    events = _run_program(model_name, seed)
                    rounds = [IMPLICIT if ev.round_no == -1 else ev.round_no
                              for ev in events if isinstance(ev, WarpDrain)]
                    model = make_model(model_name)
                    fenced = any(r not in (IMPLICIT,) for r in rounds)
                    boundaries = [ev for ev in events
                                  if isinstance(ev, EpochBoundary)]
                    if rounds != sorted(rounds):
                        broken = True
                    if model.declares_epochs and fenced and not boundaries:
                        broken = True
        assert broken

"""Property-based tests of the Optane model's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Machine
from repro.sim.optane import merge_segments

segments = st.lists(
    st.tuples(st.integers(0, 4000), st.integers(1, 300)), min_size=1, max_size=40
)


class TestMergeSegmentsProperties:
    @given(segments)
    def test_output_sorted_and_disjoint(self, segs):
        starts, lengths = zip(*segs)
        ms, ml = merge_segments(np.array(starts), np.array(lengths))
        ends = ms + ml
        assert (ms[1:] > ends[:-1]).all()  # strictly disjoint, sorted

    @given(segments)
    def test_coverage_preserved(self, segs):
        covered = np.zeros(8192, dtype=bool)
        for s, l in segs:
            covered[s : s + l] = True
        starts, lengths = zip(*segs)
        ms, ml = merge_segments(np.array(starts), np.array(lengths))
        merged = np.zeros(8192, dtype=bool)
        for s, l in zip(ms.tolist(), ml.tolist()):
            merged[s : s + l] = True
        assert (covered == merged).all()

    @given(segments)
    def test_total_bytes_at_least_max_segment(self, segs):
        starts, lengths = zip(*segs)
        _, ml = merge_segments(np.array(starts), np.array(lengths))
        assert ml.sum() >= max(lengths)
        assert ml.sum() <= sum(lengths)


class TestWriteEpochProperties:
    @settings(max_examples=30)
    @given(segments)
    def test_persists_exactly_the_written_ranges(self, segs):
        machine = Machine()
        region = machine.alloc_pm("x", 8192)
        region.visible[:] = 1
        starts, lengths = zip(*segs)
        machine.optane.write_epoch(region, np.array(starts), np.array(lengths))
        expected = np.zeros(8192, dtype=bool)
        for s, l in segs:
            expected[s : s + l] = True
        assert (region.persisted.astype(bool) == expected).all()

    @settings(max_examples=30)
    @given(segments)
    def test_time_positive_and_bounded(self, segs):
        machine = Machine()
        region = machine.alloc_pm("x", 8192)
        starts, lengths = zip(*segs)
        t = machine.optane.write_epoch(region, np.array(starts), np.array(lengths))
        assert t > 0
        # upper bound: every byte its own random line touch
        cfg = machine.config
        worst = sum(lengths) * (256 / cfg.pm_bw_seq_aligned) * cfg.pm_random_penalty
        assert t <= worst + 1e-12

    @settings(max_examples=20)
    @given(st.integers(1, 4096), st.integers(1, 64))
    def test_flush_grain_time_scales_with_touches(self, size, grain_lines):
        machine = Machine()
        region = machine.alloc_pm("x", 8192)
        grain = 64
        t = machine.optane.write_flush_grain(region, 0, size, grain=grain)
        touches = -(-size // grain)
        line_time = 256 / machine.config.pm_bw_seq_aligned
        assert t == touches * line_time

"""Clock, stats counters, and SystemConfig behaviour."""

import pytest

from repro.sim import DEFAULT_CONFIG, MachineStats, SimClock, SystemConfig
from repro.sim.stats import WindowedStats


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        c = SimClock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.now == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1e-9)

    def test_span(self):
        c = SimClock()
        with c.span() as s:
            c.advance(3.0)
        assert s.elapsed == 3.0
        assert s.start == 0.0
        assert s.end == 3.0

    def test_span_live_elapsed(self):
        c = SimClock()
        with c.span() as s:
            c.advance(1.0)
            assert s.elapsed == 1.0


class TestStats:
    def test_snapshot_is_independent(self):
        s = MachineStats()
        snap = s.snapshot()
        s.pcie_bytes_to_host += 100
        assert snap.pcie_bytes_to_host == 0

    def test_delta_since(self):
        s = MachineStats()
        snap = s.snapshot()
        s.pm_bytes_written += 64
        s.system_fences += 2
        d = s.delta_since(snap)
        assert d.pm_bytes_written == 64
        assert d.system_fences == 2
        assert d.pcie_bytes_to_gpu == 0

    def test_merged_with(self):
        a = MachineStats(pm_bytes_written=1)
        b = MachineStats(pm_bytes_written=2, syscalls=3)
        m = a.merged_with(b)
        assert m.pm_bytes_written == 3
        assert m.syscalls == 3

    def test_windowed_bandwidths(self):
        w = WindowedStats(MachineStats(pcie_bytes_to_host=1000, pm_bytes_written=500),
                          elapsed=1e-6)
        assert w.pcie_write_bandwidth == pytest.approx(1e9)
        assert w.pm_write_bandwidth == pytest.approx(5e8)

    def test_windowed_zero_elapsed(self):
        w = WindowedStats(MachineStats(pcie_bytes_to_host=1000), elapsed=0.0)
        assert w.pcie_write_bandwidth == 0.0


class TestConfig:
    def test_default_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.pcie_bw = 1.0

    def test_with_overrides(self):
        cfg = DEFAULT_CONFIG.with_overrides(pcie_bw=1e9)
        assert cfg.pcie_bw == 1e9
        assert DEFAULT_CONFIG.pcie_bw != 1e9

    def test_amdahl_identity_at_one_thread(self):
        assert DEFAULT_CONFIG.cpu_persist_speedup(1) == pytest.approx(1.0)

    def test_amdahl_plateau_matches_figure3a(self):
        # Fig. 3a: CAP-mm plateaus around 1.47x
        assert DEFAULT_CONFIG.cpu_persist_speedup(64) == pytest.approx(1.46, abs=0.02)

    def test_amdahl_two_threads(self):
        # Fig. 3a: 2 threads -> 1.20x
        assert DEFAULT_CONFIG.cpu_persist_speedup(2) == pytest.approx(1.19, abs=0.02)

    def test_amdahl_monotone(self):
        speeds = [DEFAULT_CONFIG.cpu_persist_speedup(t) for t in (1, 2, 4, 8, 16, 32)]
        assert speeds == sorted(speeds)

    def test_amdahl_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.cpu_persist_speedup(0)

    def test_parallel_fraction_complement(self):
        cfg = SystemConfig()
        total = cfg.cpu_persist_serial_fraction + cfg.cpu_persist_parallel_fraction
        assert total == pytest.approx(1.0)

"""Crash semantics around freeing and re-allocating named PM regions."""

import numpy as np
import pytest

from repro.sim import MemKind


class TestFreeReallocCrash:
    def test_realloc_does_not_resurrect_persisted_image(self, machine):
        """A freed region's persisted bytes must not reappear in a new
        allocation that reuses the name."""
        pm = machine.alloc_pm("state", 4096)
        pm.write_bytes(0, np.full(4096, 0xAB, dtype=np.uint8))
        pm.persist_range(0, 4096)
        machine.free(pm)
        fresh = machine.alloc_pm("state", 4096)
        assert not fresh.visible.any()
        machine.crash()
        assert not fresh.visible.any()
        assert not fresh.persisted.any()

    def test_stale_llc_lines_dropped_on_free(self, machine):
        """Dirty LLC lines of a freed PM region neither write back into the
        media nor survive into a same-named re-allocation."""
        pm = machine.alloc_pm("state", 4096)
        pm.write_bytes(0, np.full(4096, 0xCD, dtype=np.uint8))
        machine.llc.install_writes(pm, [0], [4096])
        assert len(machine.llc) > 0
        machine.free(pm)
        assert len(machine.llc) == 0
        fresh = machine.alloc_pm("state", 4096)
        machine.crash()  # would drain dirty lines under eADR; none remain
        assert not fresh.visible.any()

    def test_stale_lines_not_drained_by_eadr_crash(self):
        from repro.sim import Machine

        machine = Machine(eadr=True)
        pm = machine.alloc_pm("state", 4096)
        pm.write_bytes(0, np.full(4096, 0x77, dtype=np.uint8))
        machine.llc.install_writes(pm, [0], [4096])
        machine.free(pm)
        fresh = machine.alloc_pm("state", 4096)
        machine.crash()  # eADR drains the LLC - stale lines must be gone
        assert not fresh.persisted.any()

    def test_free_then_realloc_is_a_fresh_region(self, machine):
        pm = machine.alloc_pm("state", 1024)
        machine.free(pm)
        fresh = machine.alloc_pm("state", 2048)
        assert fresh is not pm
        assert fresh.size == 2048
        assert fresh.kind is MemKind.PM

    def test_free_unknown_region_raises(self, machine):
        pm = machine.alloc_pm("state", 1024)
        machine.free(pm)
        with pytest.raises(KeyError):
            machine.free(pm)

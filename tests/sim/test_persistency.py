"""The persistency-model layer: registries, the eADR shim, model hooks.

Unit-level coverage of ``repro.sim.persistency``: model/mode registry
lookups error usefully on unknown names, the legacy ``eadr`` boolean
resolves through the registry, window delegation reproduces the DDIO
toggle, and the adaptive model's staging machinery keeps its ordering and
crash promises (staged writes flush durably at window end, a direct write
flushes the region's staged backlog first, a crash drops staged data).
"""

import numpy as np
import pytest

from repro.core.persist import gpm_persist_begin, gpm_persist_end
from repro.sim.events import DdioToggle, EpochBoundary, event_to_record
from repro.sim.machine import Machine
from repro.sim.persistency import (
    MODE_REGISTRY,
    MODEL_REGISTRY,
    AdaptivePath,
    EadrStrict,
    Epoch,
    ModeEntry,
    PersistencyModel,
    Relaxed,
    Strict,
    known_mode_names,
    known_models,
    make_model,
    mode_entry,
    register_mode,
    resolve_model,
)
from repro.system import System
from repro.workloads.base import Mode


# ---------------------------------------------------------------------------
# registries
# ---------------------------------------------------------------------------


def test_model_registry_contents():
    assert set(known_models()) >= {"strict", "eadr", "epoch", "relaxed",
                                   "adaptive"}
    for name, cls in MODEL_REGISTRY.items():
        assert cls.name == name
        assert cls.fence_policy in ("strict", "epoch", "relaxed")


def test_make_model_unknown_name_lists_known():
    with pytest.raises(ValueError) as err:
        make_model("totally-bogus")
    msg = str(err.value)
    assert "totally-bogus" in msg
    for name in known_models():
        assert name in msg


def test_mode_registry_matches_mode_enum():
    # The Mode enum is a view over MODE_REGISTRY: same names, both ways.
    assert set(known_mode_names()) == {m.value for m in Mode}
    for mode in Mode:
        entry = mode_entry(mode.value)
        assert entry.model in MODEL_REGISTRY
        assert mode.data_on_pm == entry.data_on_pm
        assert mode.in_kernel_persist == entry.in_kernel_persist
        assert mode.needs_eadr == entry.needs_eadr
        assert mode.persistency_model == entry.model


def test_mode_entry_unknown_name_lists_known():
    with pytest.raises(ValueError) as err:
        mode_entry("gpm-bogus")
    msg = str(err.value)
    assert "gpm-bogus" in msg and "gpm-epoch" in msg and "cap-mm" in msg


def test_mode_from_name_errors_on_unknown():
    assert Mode.from_name("gpm-epoch") is Mode.GPM_EPOCH
    with pytest.raises(ValueError):
        Mode.from_name("nope")


def test_register_mode_rejects_unknown_model():
    with pytest.raises(ValueError):
        register_mode(ModeEntry(name="x", model="no-such-model"))


# ---------------------------------------------------------------------------
# resolve_model: the eADR deprecation shim
# ---------------------------------------------------------------------------


def test_resolve_model_default_and_shim():
    assert type(resolve_model(None)) is Strict
    assert type(resolve_model(None, eadr=True)) is EadrStrict
    assert type(resolve_model("epoch")) is Epoch
    inst = Relaxed()
    assert resolve_model(inst) is inst


def test_resolve_model_conflicts_and_types():
    with pytest.raises(ValueError):
        resolve_model("strict", eadr=True)
    with pytest.raises(TypeError):
        resolve_model(42)
    # eadr=True with an eADR-capable model is consistent, not an error.
    assert resolve_model("eadr", eadr=True).eadr


def test_system_eadr_shim_unchanged():
    # Existing call sites keep working: the boolean resolves to EadrStrict.
    system = System(eadr=True)
    assert system.eadr and system.machine.eadr
    assert type(system.persistency) is EadrStrict
    plain = System()
    assert not plain.eadr
    assert type(plain.persistency) is Strict


def test_system_accepts_model_names_and_instances():
    assert type(System(persistency="adaptive").persistency) is AdaptivePath
    model = Epoch()
    assert System(persistency=model).persistency is model


# ---------------------------------------------------------------------------
# window delegation
# ---------------------------------------------------------------------------


def _toggles(events):
    return [e for e in events if e["event"] == "ddio_toggle"]


def _collect(system):
    events = []
    system.events.subscribe(lambda ts, ev: events.append(event_to_record(ts, ev)))
    return events


@pytest.mark.parametrize("name,expects_toggle", [
    ("strict", True), ("epoch", True), ("relaxed", True),
    ("eadr", False), ("adaptive", False),
])
def test_window_toggle_per_model(name, expects_toggle):
    system = System(persistency=name)
    events = _collect(system)
    t0 = system.clock.now
    gpm_persist_begin(system)
    gpm_persist_end(system)
    toggles = _toggles(events)
    if expects_toggle:
        assert [t["enabled"] for t in toggles] == [False, True]
        assert system.clock.now > t0  # the perfctrlsts_0 writes cost time
    else:
        assert toggles == []
    assert system.machine.ddio_enabled


# ---------------------------------------------------------------------------
# the adaptive data path
# ---------------------------------------------------------------------------


def _adaptive_system():
    system = System(persistency="adaptive")
    region = system.machine.alloc_pm("/pm/x", 1 << 20)
    return system, region


def test_adaptive_outside_window_uses_default_path():
    system, region = _adaptive_system()
    region.write_bytes(0, np.zeros(64, dtype=np.uint8) + 7)
    system.machine.io_write_arrival(region, [0], [64])
    # DDIO stays on outside windows: the write parks volatile in the LLC.
    assert not np.any(region.persisted_view(np.uint8, 0, 64) == 7)


def test_adaptive_staged_writes_become_durable_at_window_end():
    system, region = _adaptive_system()
    gpm_persist_begin(system)
    region.write_bytes(0, np.zeros(64, dtype=np.uint8) + 9)
    t = system.machine.io_write_arrival(region, [0], [64])  # small -> staged
    assert t == 0.0
    assert not np.any(region.persisted_view(np.uint8, 0, 64) == 9)
    before = system.clock.now
    gpm_persist_end(system)
    assert np.all(region.persisted_view(np.uint8, 0, 64) == 9)
    assert system.clock.now > before  # the bulk flush costs media time


def test_adaptive_large_writes_take_direct_path():
    system, region = _adaptive_system()
    nbytes = 4096  # >= the 256 B XPLine threshold
    gpm_persist_begin(system)
    region.write_bytes(0, np.zeros(nbytes, dtype=np.uint8) + 5)
    t = system.machine.io_write_arrival(region, [0], [nbytes])
    assert t > 0.0  # direct media write charges time at the fence
    assert np.all(region.persisted_view(np.uint8, 0, nbytes) == 5)
    gpm_persist_end(system)


def test_adaptive_direct_flushes_staged_backlog_first():
    # Per-region persist order: data staged earlier must not be less
    # durable than a later direct write to the same region.
    system, region = _adaptive_system()
    gpm_persist_begin(system)
    region.write_bytes(0, np.zeros(64, dtype=np.uint8) + 3)
    system.machine.io_write_arrival(region, [0], [64])        # staged
    region.write_bytes(4096, np.zeros(4096, dtype=np.uint8) + 4)
    system.machine.io_write_arrival(region, [4096], [4096])   # direct
    # The direct write's arrival made the staged backlog durable too.
    assert np.all(region.persisted_view(np.uint8, 0, 64) == 3)
    assert np.all(region.persisted_view(np.uint8, 4096, 4096) == 4)
    gpm_persist_end(system)


def test_adaptive_crash_drops_staged_writes():
    system, region = _adaptive_system()
    gpm_persist_begin(system)
    region.write_bytes(0, np.zeros(64, dtype=np.uint8) + 11)
    system.machine.io_write_arrival(region, [0], [64])  # staged, volatile
    system.crash()
    assert not np.any(region.visible[:64] == 11)
    # Model state reset: a fresh window starts with nothing staged.
    model = system.persistency
    assert model._staged == {} and model._window_depth == 0


def test_adaptive_ema_follows_warp_drains():
    from repro.sim.events import WarpDrain

    system, _ = _adaptive_system()
    model = system.persistency
    assert model._ema_segment_bytes is None
    system.events.emit(WarpDrain(region="r", segments=4, nbytes=4096))
    assert model._ema_segment_bytes == pytest.approx(1024.0)
    system.events.emit(WarpDrain(region="r", segments=8, nbytes=64))
    assert model._ema_segment_bytes == pytest.approx(0.8 * 1024.0 + 0.2 * 8.0)


def test_nested_windows_flush_only_at_outermost_exit():
    # gpm_memset/gpm_memcpy open their own windows inside workload windows.
    system, region = _adaptive_system()
    gpm_persist_begin(system)
    gpm_persist_begin(system)
    region.write_bytes(0, np.zeros(32, dtype=np.uint8) + 6)
    system.machine.io_write_arrival(region, [0], [32])
    gpm_persist_end(system)  # inner exit: still inside the outer window
    assert not np.any(region.persisted_view(np.uint8, 0, 32) == 6)
    gpm_persist_end(system)
    assert np.all(region.persisted_view(np.uint8, 0, 32) == 6)


# ---------------------------------------------------------------------------
# EpochBoundary event plumbing
# ---------------------------------------------------------------------------


def test_epoch_boundary_event_round_trips():
    from repro.sim.events import EVENT_TYPES, event_from_record

    assert EVENT_TYPES["epoch_boundary"] is EpochBoundary
    assert EpochBoundary.frontier_kind == "epoch-boundary"
    rec = event_to_record(1.5, EpochBoundary(epoch=3))
    ts, ev = event_from_record(rec)
    assert ts == 1.5 and isinstance(ev, EpochBoundary) and ev.epoch == 3


def test_machine_carries_model_and_describe():
    machine = Machine(persistency="epoch")
    assert machine.persistency.name == "epoch"
    assert not machine.eadr
    for name in known_models():
        assert make_model(name).describe()


def test_custom_model_registration_roundtrip():
    class Custom(PersistencyModel):
        name = "custom-test"
        fence_policy = "epoch"

    from repro.sim.persistency import register_model

    register_model(Custom)
    try:
        assert type(make_model("custom-test")) is Custom
        entry = register_mode(ModeEntry(name="gpm-custom-test",
                                        model="custom-test", data_on_pm=True))
        assert not entry.needs_eadr
        assert Machine(persistency="custom-test").persistency.name == "custom-test"
    finally:
        MODEL_REGISTRY.pop("custom-test", None)
        MODE_REGISTRY.pop("gpm-custom-test", None)

"""Optane model: segment merging, epochs, pattern-dependent timing."""

import numpy as np
import pytest

from repro.sim import Machine
from repro.sim.optane import merge_segments


class TestMergeSegments:
    def test_empty(self):
        s, l = merge_segments(np.array([]), np.array([]))
        assert s.size == 0

    def test_disjoint_sorted(self):
        s, l = merge_segments([0, 100], [10, 10])
        assert list(s) == [0, 100]
        assert list(l) == [10, 10]

    def test_adjacent_merge(self):
        s, l = merge_segments([0, 10], [10, 10])
        assert list(s) == [0]
        assert list(l) == [20]

    def test_overlapping_merge(self):
        s, l = merge_segments([0, 5], [10, 10])
        assert list(s) == [0]
        assert list(l) == [15]

    def test_unsorted_input(self):
        s, l = merge_segments([100, 0], [10, 10])
        assert list(s) == [0, 100]

    def test_contained_segment(self):
        s, l = merge_segments([0, 2], [20, 4])
        assert list(s) == [0]
        assert list(l) == [20]

    def test_gap_of_one_byte_not_merged(self):
        s, l = merge_segments([0, 11], [10, 5])
        assert list(s) == [0, 11]


class TestWriteEpoch:
    def test_persists_functionally(self, machine):
        r = machine.alloc_pm("x", 1024)
        r.write_bytes(0, [3] * 100)
        machine.optane.write_epoch(r, [0], [100])
        assert (r.persisted_view(np.uint8, 0, 100) == 3).all()

    def test_zero_length_segments_free(self, machine):
        r = machine.alloc_pm("x", 1024)
        assert machine.optane.write_epoch(r, [0], [0]) == 0.0

    def test_time_scales_with_lines_touched(self, machine):
        r = machine.alloc_pm("x", 1 << 16)
        machine.optane.write_epoch(r, [0], [256])  # warm sequentiality
        t1 = machine.optane.write_epoch(r, [256], [256])
        t2 = machine.optane.write_epoch(r, [512], [1024])
        assert t2 == pytest.approx(4 * t1)

    def test_same_line_writes_combine_within_epoch(self, machine):
        r = machine.alloc_pm("x", 1024)
        machine.optane.write_epoch(r, [512], [256])  # warm sequentiality
        t = machine.optane.write_epoch(r, [768, 832, 896, 960], [64, 64, 64, 64])
        machine.optane.write_epoch(r, [0], [256])
        t_single = machine.optane.write_epoch(r, [256], [256])
        # merged into one full-line run: same cost as one 256 B write
        assert t == pytest.approx(t_single, rel=0.01)

    def test_stats_accounting(self, machine):
        r = machine.alloc_pm("x", 4096)
        machine.optane.write_epoch(r, [0], [100])
        assert machine.stats.pm_bytes_written == 100
        assert machine.stats.pm_bytes_written_internal == 256


class TestPatternBandwidths:
    """The Section 6.1 microbenchmark triple: 12.5 / 3.13 / 0.72 GB/s."""

    def _bw(self, grain, addresses):
        machine = Machine()
        r = machine.alloc_pm("x", max(addresses) + grain + 1)
        t = sum(machine.optane.write_epoch(r, [a], [grain]) for a in addresses)
        return grain * len(addresses) / t / 1e9

    def test_sequential_aligned(self):
        bw = self._bw(256, [i * 256 for i in range(2048)])
        assert bw == pytest.approx(12.5, rel=0.01)

    def test_sequential_unaligned_64b(self):
        bw = self._bw(64, [i * 64 for i in range(4096)])
        assert bw == pytest.approx(3.13, rel=0.02)

    def test_random(self):
        rng = np.random.default_rng(0)
        addrs = (rng.permutation(8192) * 64).tolist()
        bw = self._bw(64, addrs)
        assert bw == pytest.approx(0.72, rel=0.02)

    def test_ordering_seq_faster_than_unaligned_faster_than_random(self):
        seq = self._bw(256, [i * 256 for i in range(512)])
        unal = self._bw(64, [i * 64 for i in range(512)])
        rng = np.random.default_rng(1)
        rand = self._bw(64, (rng.permutation(512) * 64).tolist())
        assert seq > unal > rand


class TestFlushGrain:
    def test_matches_per_line_epochs(self, machine):
        r1 = machine.alloc_pm("a", 8192)
        r1.visible[:4096] = 9
        bulk = machine.optane.write_flush_grain(r1, 0, 4096, grain=64)
        m2 = Machine()
        r2 = m2.alloc_pm("b", 8192)
        r2.visible[:4096] = 9
        per_line = sum(m2.optane.write_epoch(r2, [i * 64], [64]) for i in range(64))
        assert bulk == pytest.approx(per_line, rel=0.1)
        assert (r1.persisted_view(np.uint8, 0, 4096) == 9).all()

    def test_random_flag_slower(self, machine):
        r = machine.alloc_pm("a", 8192)
        t_seq = machine.optane.write_flush_grain(r, 0, 4096, grain=64)
        t_rand = machine.optane.write_flush_grain(r, 0, 4096, grain=64, random=True)
        assert t_rand > 3 * t_seq

    def test_zero_size(self, machine):
        r = machine.alloc_pm("a", 128)
        assert machine.optane.write_flush_grain(r, 0, 0) == 0.0

    def test_bad_grain(self, machine):
        r = machine.alloc_pm("a", 128)
        with pytest.raises(ValueError):
            machine.optane.write_flush_grain(r, 0, 64, grain=0)


class TestFlushLines:
    def test_persists_each_line(self, machine):
        r = machine.alloc_pm("a", 1024)
        r.visible[:] = 5
        machine.optane.flush_lines(r, np.array([0, 128, 512]), 64)
        p = r.persisted_view(np.uint8)
        assert (p[0:64] == 5).all()
        assert (p[128:192] == 5).all()
        assert (p[512:576] == 5).all()
        assert (p[64:128] == 0).all()

    def test_scattered_lines_pay_random_penalty(self, machine):
        r = machine.alloc_pm("a", 1 << 20)
        t_spread = machine.optane.flush_lines(
            r, np.arange(64, dtype=np.int64) * 4096, 64
        )
        t_dense = machine.optane.flush_lines(
            r, np.arange(64, dtype=np.int64) * 64, 64
        )
        assert t_spread > 2 * t_dense

    def test_empty(self, machine):
        r = machine.alloc_pm("a", 128)
        assert machine.optane.flush_lines(r, np.array([], dtype=np.int64), 64) == 0.0


class TestStreamIdentity:
    """The sequentiality heuristic must key streams by :attr:`Region.token`
    (never reused), not ``id()`` (recycled by the allocator).  Regression:
    a new region allocated where a dead one lived could masquerade as a
    sequential continuation of the dead region's stream."""

    def test_tokens_are_unique_across_realloc(self, machine):
        r1 = machine.alloc_pm("x", 4096)
        token1 = r1.token
        machine.free(r1)
        del r1
        r2 = machine.alloc_pm("x", 4096)
        assert r2.token != token1
        assert r2.token > token1

    def test_freed_and_reallocated_region_is_cold(self, machine):
        from repro.sim import DEFAULT_CONFIG as cfg

        line_time = cfg.pm_xpline_bytes / cfg.pm_bw_seq_aligned
        cold = cfg.pm_random_penalty * line_time
        # Repeat to give CPython every chance to hand the new Region the
        # dead one's id(); under token keying the continuation write must
        # price as a cold random start every single time.
        for _ in range(32):
            r = machine.alloc_pm("alias", 4096)
            machine.optane.write_epoch(r, [0], [256])
            machine.free(r)
            del r
            r2 = machine.alloc_pm("alias", 4096)
            t = machine.optane.write_epoch(r2, [256], [256])
            assert t == pytest.approx(cold)
            machine.free(r2)
            del r2

    def test_same_region_continuation_still_warm(self, machine):
        from repro.sim import DEFAULT_CONFIG

        line_time = DEFAULT_CONFIG.pm_xpline_bytes / DEFAULT_CONFIG.pm_bw_seq_aligned
        r = machine.alloc_pm("x", 4096)
        machine.optane.write_epoch(r, [0], [256])
        assert machine.optane.write_epoch(r, [256], [256]) == pytest.approx(line_time)


class TestRead:
    def test_read_time_positive_and_counted(self, machine):
        t = machine.optane.read(4096)
        assert t > 0
        assert machine.stats.pm_bytes_read == 4096

    def test_random_read_slower(self, machine):
        assert machine.optane.read(1 << 20, random=True) > machine.optane.read(1 << 20)

    def test_negative_raises(self, machine):
        with pytest.raises(ValueError):
            machine.optane.read(-1)

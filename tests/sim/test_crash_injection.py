"""Crash injector: arming, firing, randomisation."""

import numpy as np
import pytest

from repro.sim import CrashInjector, Machine, SimulatedCrash


class TestArming:
    def test_not_armed_initially(self, machine):
        inj = CrashInjector(machine)
        assert not inj.armed
        inj.advance(10**9)  # no-op when unarmed

    def test_arm_and_query(self, machine):
        inj = CrashInjector(machine)
        inj.arm(5)
        assert inj.armed
        assert inj.crash_after == 5

    def test_negative_point_rejected(self, machine):
        with pytest.raises(ValueError):
            CrashInjector(machine).arm(-1)

    def test_arm_random_in_range(self, machine):
        inj = CrashInjector(machine, np.random.default_rng(7))
        for _ in range(20):
            point = inj.arm_random(100)
            assert 0 <= point < 100
            inj.disarm()

    def test_arm_random_requires_positive(self, machine):
        with pytest.raises(ValueError):
            CrashInjector(machine).arm_random(0)

    def test_disarm(self, machine):
        inj = CrashInjector(machine)
        inj.arm(0)
        inj.disarm()
        assert not inj.armed
        inj.advance(10)


class TestFiring:
    def test_fires_at_threshold_and_crashes_machine(self, machine):
        pm = machine.alloc_pm("p", 64)
        pm.write_bytes(0, [1] * 8)  # unpersisted
        inj = CrashInjector(machine)
        inj.arm(3)
        inj.advance(2)  # below threshold
        with pytest.raises(SimulatedCrash) as exc:
            inj.advance(1)
        assert exc.value.threads_retired == 3
        assert inj.fired
        assert machine.crash_count == 1
        assert not pm.visible.any()

    def test_fires_only_once(self, machine):
        inj = CrashInjector(machine)
        inj.arm(0)
        with pytest.raises(SimulatedCrash):
            inj.advance(0)
        inj.advance(100)  # no second crash
        assert machine.crash_count == 1

    def test_rearm_after_fire(self, machine):
        inj = CrashInjector(machine)
        inj.arm(0)
        with pytest.raises(SimulatedCrash):
            inj.advance(0)
        inj.arm(1)
        assert inj.armed
        with pytest.raises(SimulatedCrash):
            inj.advance(5)
        assert machine.crash_count == 2


class TestReplayMetadata:
    def test_crash_carries_armed_point(self, machine):
        inj = CrashInjector(machine)
        inj.arm(3)
        with pytest.raises(SimulatedCrash) as exc:
            inj.advance(7)
        assert exc.value.crash_after == 3
        assert exc.value.seed is None
        assert exc.value.frontier_ordinal is None

    def test_seeded_arm_random_is_replayable(self, machine):
        inj = CrashInjector(machine, np.random.default_rng(1))
        point = inj.arm_random(1000, seed=42)
        assert CrashInjector(machine).arm_random(1000, seed=42) == point
        with pytest.raises(SimulatedCrash) as exc:
            inj.advance(point + 1)
        assert exc.value.seed == 42
        assert exc.value.crash_after == point


class TestFrontierArming:
    def test_fires_on_nth_frontier_event(self, machine):
        from repro.sim.events import HbmWrite, SystemFence

        inj = CrashInjector(machine)
        inj.arm_at_frontier(1)
        machine.events.emit(SystemFence())       # ordinal 0: no crash
        machine.events.emit(HbmWrite(nbytes=8))  # untagged: not counted
        with pytest.raises(SimulatedCrash) as exc:
            machine.events.emit(SystemFence())   # ordinal 1: crash
        assert exc.value.frontier_ordinal == 1
        assert exc.value.frontier_kind == "fence"
        assert machine.crash_count == 1

    def test_crash_precedes_side_effect(self, machine):
        # the crash fires during emission: an unpersisted write present when
        # the frontier event is emitted is lost, exactly like a real power cut
        pm = machine.alloc_pm("p", 64)
        pm.write_bytes(0, [1] * 8)
        from repro.sim.events import WarpDrain

        inj = CrashInjector(machine)
        inj.arm_at_frontier(0)
        with pytest.raises(SimulatedCrash):
            machine.events.emit(WarpDrain())
        assert not pm.visible.any()

    def test_disarm_unsubscribes(self, machine):
        from repro.sim.events import SystemFence

        inj = CrashInjector(machine)
        inj.arm_at_frontier(0)
        inj.disarm()
        machine.events.emit(SystemFence())  # no crash
        assert machine.crash_count == 0
        assert not inj.armed

    def test_negative_ordinal_rejected(self, machine):
        with pytest.raises(ValueError):
            CrashInjector(machine).arm_at_frontier(-1)

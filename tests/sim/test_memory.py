"""Region semantics: images, views, persistence boundary, crash."""

import numpy as np
import pytest

from repro.sim.memory import CRASH_POISON, MemKind, Region


class TestConstruction:
    def test_pm_region_has_persisted_image(self):
        r = Region("a", 128, MemKind.PM)
        assert r.persisted is not None
        assert r.is_persistent

    @pytest.mark.parametrize("kind", [MemKind.DRAM, MemKind.HBM])
    def test_volatile_region_has_no_persisted_image(self, kind):
        r = Region("a", 128, kind)
        assert r.persisted is None
        assert not r.is_persistent

    @pytest.mark.parametrize("size", [0, -1])
    def test_rejects_non_positive_size(self, size):
        with pytest.raises(ValueError):
            Region("a", size, MemKind.PM)

    def test_host_property(self):
        assert Region("a", 8, MemKind.PM).is_host
        assert Region("a", 8, MemKind.DRAM).is_host
        assert not Region("a", 8, MemKind.HBM).is_host

    def test_starts_zeroed(self):
        r = Region("a", 64, MemKind.PM)
        assert not r.visible.any()
        assert not r.persisted.any()


class TestAccess:
    def test_typed_view_roundtrip(self):
        r = Region("a", 64, MemKind.PM)
        v = r.view(np.uint32, 8, 4)
        v[:] = [1, 2, 3, 4]
        assert list(r.view(np.uint32, 8, 4)) == [1, 2, 3, 4]

    def test_write_read_bytes(self):
        r = Region("a", 16, MemKind.DRAM)
        r.write_bytes(4, [9, 8, 7])
        assert list(r.read_bytes(4, 3)) == [9, 8, 7]

    def test_out_of_range_read_raises(self):
        r = Region("a", 16, MemKind.PM)
        with pytest.raises(IndexError):
            r.read_bytes(10, 10)

    def test_out_of_range_view_raises(self):
        r = Region("a", 16, MemKind.PM)
        with pytest.raises(IndexError):
            r.view(np.uint64, 8, 2)

    def test_negative_offset_raises(self):
        r = Region("a", 16, MemKind.PM)
        with pytest.raises(IndexError):
            r.read_bytes(-1, 2)

    def test_persisted_view_on_volatile_raises(self):
        r = Region("a", 16, MemKind.HBM)
        with pytest.raises(TypeError):
            r.persisted_view(np.uint8)


class TestPersistence:
    def test_writes_are_not_persistent_until_persisted(self):
        r = Region("a", 64, MemKind.PM)
        r.write_bytes(0, [1, 2, 3])
        assert r.unpersisted_bytes() == 3
        assert not r.persisted_view(np.uint8, 0, 3).any()

    def test_persist_range_copies_visible(self):
        r = Region("a", 64, MemKind.PM)
        r.write_bytes(0, [1, 2, 3, 4])
        r.persist_range(0, 2)
        assert list(r.persisted_view(np.uint8, 0, 4)) == [1, 2, 0, 0]

    def test_persist_ranges_vectorised(self):
        r = Region("a", 64, MemKind.PM)
        r.visible[:] = 7
        r.persist_ranges(np.array([0, 32]), np.array([4, 4]))
        assert r.persisted[:4].sum() == 28
        assert r.persisted[32:36].sum() == 28
        assert r.persisted[4:32].sum() == 0

    def test_persist_on_volatile_raises(self):
        r = Region("a", 16, MemKind.DRAM)
        with pytest.raises(TypeError):
            r.persist_range(0, 4)


class TestCrash:
    def test_pm_crash_reverts_to_persisted(self):
        r = Region("a", 16, MemKind.PM)
        r.write_bytes(0, [5] * 8)
        r.persist_range(0, 4)
        r.crash()
        assert list(r.visible[:8]) == [5, 5, 5, 5, 0, 0, 0, 0]
        assert not r.lost

    def test_volatile_crash_poisons(self):
        r = Region("a", 16, MemKind.HBM)
        r.write_bytes(0, [5] * 16)
        r.crash()
        assert (r.visible == CRASH_POISON).all()
        assert r.lost

    def test_unpersisted_bytes_zero_after_crash(self):
        r = Region("a", 16, MemKind.PM)
        r.write_bytes(0, [1] * 16)
        r.crash()
        assert r.unpersisted_bytes() == 0

"""gpm_map/gpm_unmap and the persistency primitives."""

import numpy as np
import pytest

from repro.core import (
    MappingError,
    gpm_map,
    gpm_persist_begin,
    gpm_persist_end,
    gpm_unmap,
    persist_window,
)


class TestMapping:
    def test_create_and_use(self, system):
        r = gpm_map(system, "/pm/a", 4096, create=True)
        assert r.size == 4096
        arr = r.array(np.uint32)
        arr.np[0] = 5
        assert r.view(np.uint32, 0, 1)[0] == 5

    def test_create_requires_size(self, system):
        with pytest.raises(MappingError):
            gpm_map(system, "/pm/a", create=True)

    def test_create_existing_rejected(self, system):
        gpm_map(system, "/pm/a", 64, create=True)
        with pytest.raises(MappingError):
            gpm_map(system, "/pm/a", 64, create=True)

    def test_open_missing_rejected(self, system):
        with pytest.raises(MappingError):
            gpm_map(system, "/pm/none")

    def test_open_size_mismatch_rejected(self, system):
        gpm_map(system, "/pm/a", 64, create=True)
        with pytest.raises(MappingError):
            gpm_map(system, "/pm/a", 128)

    def test_reopen_after_crash_preserves_persisted(self, system):
        r = gpm_map(system, "/pm/a", 64, create=True)
        r.view(np.uint32, 0, 1)[0] = 9
        r.region.persist_range(0, 4)
        system.crash()
        r2 = gpm_map(system, "/pm/a")
        assert r2.view(np.uint32, 0, 1)[0] == 9

    def test_unmap_blocks_access(self, system):
        r = gpm_map(system, "/pm/a", 64, create=True)
        gpm_unmap(system, r)
        with pytest.raises(MappingError):
            r.array(np.uint32)
        with pytest.raises(MappingError):
            gpm_unmap(system, r)

    def test_contents_survive_unmap(self, system):
        r = gpm_map(system, "/pm/a", 64, create=True)
        r.view(np.uint8)[:] = 4
        gpm_unmap(system, r)
        assert (gpm_map(system, "/pm/a").view(np.uint8) == 4).all()


class TestPersistWindow:
    def test_begin_end_toggle_ddio(self, system):
        gpm_persist_begin(system)
        assert not system.machine.ddio_enabled
        gpm_persist_end(system)
        assert system.machine.ddio_enabled

    def test_context_manager(self, system):
        with persist_window(system):
            assert not system.machine.ddio_enabled
        assert system.machine.ddio_enabled

    def test_window_restores_on_exception(self, system):
        with pytest.raises(RuntimeError):
            with persist_window(system):
                raise RuntimeError("boom")
        assert system.machine.ddio_enabled

    def test_noop_on_eadr(self, eadr_system):
        gpm_persist_begin(eadr_system)
        assert eadr_system.machine.ddio_enabled  # untouched: LLC is durable
        gpm_persist_end(eadr_system)

    def test_window_has_cost(self, system):
        t0 = system.clock.now
        with persist_window(system):
            pass
        assert system.clock.now > t0

    def test_eadr_window_is_free(self, eadr_system):
        t0 = eadr_system.clock.now
        with persist_window(eadr_system):
            pass
        assert eadr_system.clock.now == t0

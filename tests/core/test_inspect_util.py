"""The post-crash inspector and the gpm_memset/gpm_memcpy utilities."""

import numpy as np
import pytest

from repro.core import (
    GpmError,
    TransactionFlag,
    classify_file,
    format_survey,
    gpm_map,
    gpm_memcpy,
    gpm_memset,
    gpmcp_create,
    gpmlog_create_conv,
    gpmlog_create_hcl,
    gpmlog_insert,
    pending_recovery,
    persist_window,
    survey,
)


class TestInspector:
    def test_classifies_hcl_log(self, system):
        log = gpmlog_create_hcl(system, "/pm/l", 1 << 20, 2, 64)

        def k(ctx, log):
            if ctx.global_id < 10:
                gpmlog_insert(ctx, log, np.uint32(1))

        with persist_window(system):
            system.gpu.launch(k, 2, 64, (log,))
        report = classify_file(system, system.fs.open("/pm/l"))
        assert report.kind == "hcl-log"
        assert report.detail["threads_with_entries"] == 10
        assert report.detail["geometry"] == "2x64"

    def test_classifies_conv_log(self, system):
        gpmlog_create_conv(system, "/pm/c", 1 << 20, 8)
        report = classify_file(system, system.fs.open("/pm/c"))
        assert report.kind == "conv-log"
        assert report.detail["partitions"] == 8

    def test_classifies_checkpoint(self, system):
        gpmcp_create(system, "/pm/cp", 4096, 2, 3)
        report = classify_file(system, system.fs.open("/pm/cp"))
        assert report.kind == "checkpoint"
        assert report.detail["groups"] == 3

    def test_classifies_tx_flag_and_pending_recovery(self, system):
        flag = TransactionFlag.create(system, "/pm/flag")
        assert pending_recovery(system) == []
        flag.begin()
        system.crash()
        assert pending_recovery(system) == ["/pm/flag"]
        report = classify_file(system, system.fs.open("/pm/flag"))
        assert report.kind == "tx-flag"
        assert report.detail["transaction_active"] is True

    def test_classifies_pstruct_types(self, system):
        from repro.core.persist import persist_window
        from repro.pstruct import PersistentHashMap, PersistentRing

        pmap = PersistentHashMap.create(system, "/pm/map", capacity=1024)
        pmap.insert_batch([1, 2], [10, 20])
        ring = PersistentRing.create(system, "/pm/ring", capacity=64)

        def k(ctx, ring):
            if ctx.global_id < 5:
                ring.append(ctx, ctx.global_id)

        with persist_window(system):
            system.gpu.launch(k, 1, 32, (ring,))
        m_report = classify_file(system, system.fs.open("/pm/map"))
        assert m_report.kind == "hashmap"
        assert m_report.detail["occupied"] == 2
        r_report = classify_file(system, system.fs.open("/pm/ring"))
        assert r_report.kind == "ring"
        assert r_report.detail["committed"] == 5

    def test_raw_fallback(self, system):
        system.fs.create("/pm/blob", 4096)
        report = classify_file(system, system.fs.open("/pm/blob"))
        assert report.kind == "raw"

    def test_survey_and_format(self, system):
        gpmlog_create_hcl(system, "/pm/l", 1 << 20, 1, 32)
        TransactionFlag.create(system, "/pm/flag").begin()
        reports = survey(system)
        assert {r.kind for r in reports} == {"hcl-log", "tx-flag"}
        text = format_survey(system)
        assert "RECOVERY NEEDED" in text
        assert "/pm/l" in text

    def test_inspector_reads_only_durable_state(self, system):
        """Unflushed (volatile) log inserts must be invisible to it."""
        log = gpmlog_create_hcl(system, "/pm/l", 1 << 20, 1, 32)

        def k(ctx, log):
            gpmlog_insert(ctx, log, np.uint32(1))

        system.gpu.launch(k, 1, 32, (log,))  # no persist window: LLC only
        report = classify_file(system, system.fs.open("/pm/l"))
        assert report.detail["threads_with_entries"] == 0


class TestMemUtilities:
    def test_memset_durable(self, system):
        region = gpm_map(system, "/pm/a", 4096, create=True)
        t = gpm_memset(system, region, 64, 1024, value=7)
        assert t > 0
        assert (region.persisted_view(np.uint8, 64, 1024) == 7).all()
        assert not region.persisted_view(np.uint8, 0, 64).any()

    def test_memset_validations(self, system):
        region = gpm_map(system, "/pm/a", 4096, create=True)
        with pytest.raises(GpmError):
            gpm_memset(system, region, 0, 64, value=300)
        hbm = system.machine.alloc_hbm("h", 64)
        with pytest.raises(GpmError):
            gpm_memset(system, hbm, 0, 64)

    def test_memcpy_hbm_to_pm_durable(self, system):
        src = system.machine.alloc_hbm("src", 4096)
        src.view(np.uint8)[:] = 9
        dst = gpm_map(system, "/pm/b", 4096, create=True)
        gpm_memcpy(system, dst, 0, src, 0, 4096)
        system.crash()
        assert (dst.view(np.uint8) == 9).all()

    def test_memcpy_pm_to_pm(self, system):
        a = gpm_map(system, "/pm/a", 1024, create=True)
        b = gpm_map(system, "/pm/b", 1024, create=True)
        a.view(np.uint8)[:] = 4
        gpm_memcpy(system, b, 0, a, 0, 1024)
        assert (b.persisted_view(np.uint8) == 4).all()

    def test_memcpy_dst_must_be_pm(self, system):
        hbm = system.machine.alloc_hbm("h", 64)
        a = gpm_map(system, "/pm/a", 64, create=True)
        with pytest.raises(GpmError):
            gpm_memcpy(system, hbm, 0, a, 0, 64)

    def test_memset_on_eadr_platform(self, eadr_system):
        region = gpm_map(eadr_system, "/pm/a", 1024, create=True)
        gpm_memset(eadr_system, region, 0, 1024, value=3)
        eadr_system.crash()
        assert (region.view(np.uint8) == 3).all()

"""Conventional logging and the gpmlog_* front-end API."""

import numpy as np
import pytest

from repro.core import (
    ConventionalLog,
    GpmError,
    HclLog,
    LogEmpty,
    LogFull,
    gpmlog_clear,
    gpmlog_close,
    gpmlog_create_conv,
    gpmlog_create_hcl,
    gpmlog_insert,
    gpmlog_open,
    gpmlog_read,
    gpmlog_remove,
    persist_window,
)


class TestConventionalLog:
    def test_append_and_host_read(self, system):
        log = gpmlog_create_conv(system, "/pm/c", 1 << 20, 8)

        def k(ctx, log):
            log.insert(ctx, np.array([ctx.global_id], dtype=np.uint32), partition=0)

        with persist_window(system):
            system.gpu.launch(k, 1, 16, (log,))
        assert log.host_count(0, persisted=False) == 64
        assert int(log.host_read_entry(0, 4, index=0, persisted=False).view(np.uint32)[0]) == 0

    def test_default_partition_by_block(self, system):
        log = gpmlog_create_conv(system, "/pm/c", 1 << 20, 8)

        def k(ctx, log):
            log.insert(ctx, np.uint32(1))

        with persist_window(system):
            system.gpu.launch(k, 3, 32, (log,))
        assert all(log.host_count(p, persisted=False) == 128 for p in range(3))
        assert log.host_count(3, persisted=False) == 0

    def test_serialisation_charged(self, system):
        log = gpmlog_create_conv(system, "/pm/c", 1 << 20, 8)

        def k(ctx, log):
            log.insert(ctx, np.uint32(1), partition=0)

        res = system.gpu.launch(k, 1, 128, (log,))
        assert res.accounting.serial_time > 100 * system.config.pcie_rtt_s

    def test_more_partitions_less_serialisation(self, system):
        def k(ctx, log):
            log.insert(ctx, np.uint32(1))

        log1 = gpmlog_create_conv(system, "/pm/c1", 1 << 20, 1)
        few = system.gpu.launch(k, 4, 64, (log1,)).accounting.serial_time
        log4 = gpmlog_create_conv(system, "/pm/c4", 1 << 20, 4)
        many = system.gpu.launch(k, 4, 64, (log4,)).accounting.serial_time
        assert few > 3 * many

    def test_partition_bounds(self, system):
        log = gpmlog_create_conv(system, "/pm/c", 1 << 20, 4)

        def k(ctx, log):
            with pytest.raises(GpmError):
                log.insert(ctx, np.uint32(1), partition=4)

        system.gpu.launch(k, 1, 1, (log,))

    def test_log_full(self, system):
        log = gpmlog_create_conv(system, "/pm/c", 16 * 1024, 4)

        def k(ctx, log):
            with pytest.raises(LogFull):
                for _ in range(10 ** 6):
                    log.insert(ctx, np.uint32(1), partition=0)

        system.gpu.launch(k, 1, 1, (log,))

    def test_remove_and_read(self, system):
        log = gpmlog_create_conv(system, "/pm/c", 1 << 20, 2)

        def k(ctx, log):
            log.insert(ctx, np.uint32(10), partition=1)
            log.insert(ctx, np.uint32(20), partition=1)
            log.remove(ctx, 4, partition=1)
            assert int(log.read(ctx, 4, partition=1).view(np.uint32)[0]) == 10
            with pytest.raises(LogEmpty):
                log.remove(ctx, 16, partition=1)

        system.gpu.launch(k, 1, 1, (log,))

    def test_clear_one_partition(self, system):
        log = gpmlog_create_conv(system, "/pm/c", 1 << 20, 2)

        def k(ctx, log):
            log.insert(ctx, np.uint32(1), partition=0)
            log.insert(ctx, np.uint32(1), partition=1)

        system.gpu.launch(k, 1, 1, (log,))
        log.clear(0)
        assert log.host_count(0, persisted=False) == 0
        assert log.host_count(1, persisted=False) == 4


class TestFrontEndApi:
    def test_dispatch_hcl(self, system):
        log = gpmlog_create_hcl(system, "/pm/h", 1 << 20, 1, 32)

        def k(ctx, log):
            gpmlog_insert(ctx, log, np.uint32(5))
            assert int(gpmlog_read(ctx, log, 4).view(np.uint32)[0]) == 5
            gpmlog_remove(ctx, log, 4)

        with persist_window(system):
            system.gpu.launch(k, 1, 32, (log,))
        gpmlog_clear(log)

    def test_open_dispatches_on_magic(self, system):
        gpmlog_create_hcl(system, "/pm/h", 1 << 20, 1, 32)
        gpmlog_create_conv(system, "/pm/c", 1 << 20, 4)
        assert isinstance(gpmlog_open(system, "/pm/h"), HclLog)
        assert isinstance(gpmlog_open(system, "/pm/c"), ConventionalLog)

    def test_open_garbage_rejected(self, system):
        system.fs.create("/pm/junk", 4096)
        with pytest.raises(GpmError):
            gpmlog_open(system, "/pm/junk")

    def test_open_survives_crash(self, system):
        log = gpmlog_create_hcl(system, "/pm/h", 1 << 20, 1, 32)

        def k(ctx, log):
            gpmlog_insert(ctx, log, np.uint32(ctx.global_id))

        with persist_window(system):
            system.gpu.launch(k, 1, 32, (log,))
        system.crash()
        log2 = gpmlog_open(system, "/pm/h")
        assert isinstance(log2, HclLog)
        assert log2.host_tail(7) == 1
        assert int(log2.host_read_entry(7, 4).view(np.uint32)[0]) == 7

    def test_close(self, system):
        log = gpmlog_create_hcl(system, "/pm/h", 1 << 20, 1, 32)
        gpmlog_close(system, log)
        assert not log.gpm.mapped

"""Hierarchical Coalesced Logging: layout, atomicity, coalescing."""

import numpy as np
import pytest

from repro.core import (
    GpmError,
    LogEmpty,
    LogFull,
    chunks_needed,
    entry_chunks,
    gpmlog_create_hcl,
    persist_window,
)
from repro.core.hcl import _STRIPE, HclLog


class TestEntryChunks:
    def test_exact_multiple(self):
        c = entry_chunks(np.arange(4, dtype=np.uint32))
        assert c.size == 4

    def test_padding(self):
        c = entry_chunks(b"abcdef")  # 6 bytes -> 2 chunks
        assert c.size == 2
        assert c.view(np.uint8)[:6].tobytes() == b"abcdef"

    def test_empty_rejected(self):
        with pytest.raises(GpmError):
            entry_chunks(b"")

    def test_chunks_needed(self):
        assert chunks_needed(1) == 1
        assert chunks_needed(4) == 1
        assert chunks_needed(5) == 2
        assert chunks_needed(24) == 6


class TestLayout:
    def test_geometry_persisted_in_header(self, system):
        log = gpmlog_create_hcl(system, "/pm/l", 1 << 20, 4, 128)
        assert log.blocks == 4
        assert log.threads_per_block == 128
        assert log.chunks_per_thread >= 1
        assert log.data_offset % _STRIPE == 0

    def test_too_small_rejected(self, system):
        with pytest.raises(GpmError):
            gpmlog_create_hcl(system, "/pm/l", 1024, 64, 256)

    def test_bad_geometry_rejected(self, system):
        from repro.core.mapping import gpm_map

        region = gpm_map(system, "/pm/l", 1 << 20, create=True)
        with pytest.raises(GpmError):
            HclLog.format(region, 0, 128)

    def test_chunk_offsets_lane_strided(self, system):
        log = gpmlog_create_hcl(system, "/pm/l", 1 << 20, 2, 64)
        # lanes of one warp are 4 B apart within a 128 B stripe
        assert log.chunk_offset(0, 1, 0) - log.chunk_offset(0, 0, 0) == 4
        # consecutive chunks of one thread are one stripe apart (Fig. 5)
        assert log.chunk_offset(0, 0, 1) - log.chunk_offset(0, 0, 0) == _STRIPE

    def test_warp_areas_disjoint(self, system):
        log = gpmlog_create_hcl(system, "/pm/l", 1 << 20, 2, 64)
        warp_area = log.chunks_per_thread * _STRIPE
        assert log.chunk_offset(1, 0, 0) - log.chunk_offset(0, 0, 0) == warp_area


class TestInsertReadRemove:
    def _log(self, system, blocks=2, tpb=64):
        return gpmlog_create_hcl(system, "/pm/l", 1 << 20, blocks, tpb)

    def test_roundtrip_per_thread(self, system):
        log = self._log(system)

        def k(ctx, log):
            e = np.array([ctx.global_id, ctx.global_id ^ 0xFF], dtype=np.uint32)
            log.insert(ctx, e)
            got = log.read(ctx, 8).view(np.uint32)
            assert list(got) == [ctx.global_id, ctx.global_id ^ 0xFF]

        with persist_window(system):
            system.gpu.launch(k, 2, 64, (log,))
        assert log.host_tail(0) == 2
        assert list(log.host_read_entry(77, 8).view(np.uint32)) == [77, 77 ^ 0xFF]

    def test_multiple_entries_lifo(self, system):
        log = self._log(system)

        def k(ctx, log):
            log.insert(ctx, np.uint32(1))
            log.insert(ctx, np.uint32(2))
            assert int(log.read(ctx, 4).view(np.uint32)[0]) == 2
            log.remove(ctx, 4)
            assert int(log.read(ctx, 4).view(np.uint32)[0]) == 1

        with persist_window(system):
            system.gpu.launch(k, 1, 32, (log,))

    def test_entry_count(self, system):
        log = self._log(system)

        def k(ctx, log):
            for _ in range(3):
                log.insert(ctx, np.zeros(2, dtype=np.uint32))
            assert log.entry_count(ctx, 8) == 3

        with persist_window(system):
            system.gpu.launch(k, 1, 32, (log,))

    def test_log_full(self, system):
        log = gpmlog_create_hcl(system, "/pm/l", 32 * 1024, 1, 32)

        def k(ctx, log):
            with pytest.raises(LogFull):
                for _ in range(10 ** 6):
                    log.insert(ctx, np.uint32(1))

        with persist_window(system):
            system.gpu.launch(k, 1, 1, (log,))

    def test_read_empty_raises(self, system):
        log = self._log(system)

        def k(ctx, log):
            with pytest.raises(LogEmpty):
                log.read(ctx, 4)

        system.gpu.launch(k, 1, 1, (log,))

    def test_geometry_mismatch_rejected(self, system):
        log = gpmlog_create_hcl(system, "/pm/l", 1 << 20, 1, 32)

        def k(ctx, log):
            log.insert(ctx, np.uint32(0))

        with pytest.raises(GpmError):
            system.gpu.launch(k, 2, 32, (log,))

    def test_clear(self, system):
        log = self._log(system)

        def k(ctx, log):
            log.insert(ctx, np.uint32(9))

        with persist_window(system):
            system.gpu.launch(k, 2, 64, (log,))
        log.clear()
        assert log.host_tail(0, persisted=False) == 0
        assert log.host_tail(0, persisted=True) == 0


class TestCoalescing:
    def test_warp_insert_coalesces_stripes(self, system):
        """32 lockstep inserts of a 6-chunk entry = 6 stripe writes + tails."""
        log = gpmlog_create_hcl(system, "/pm/l", 1 << 20, 1, 32)
        system.machine.set_ddio(False)

        def k(ctx, log):
            log.insert(ctx, np.zeros(24, dtype=np.uint8))  # 6 chunks

        res = system.gpu.launch(k, 1, 32, (log,))
        # 6 stripes of 128 B + 1 tail line = 7 transactions for the warp
        assert res.accounting.host_write_tx == 7

    def test_hcl_insert_needs_no_locks(self, system):
        """No serialisation is ever charged by HCL inserts."""
        log = gpmlog_create_hcl(system, "/pm/l", 1 << 20, 4, 128)

        def k(ctx, log):
            log.insert(ctx, np.uint32(1))

        res = system.gpu.launch(k, 4, 128, (log,))
        assert res.accounting.serial_time == 0.0


class TestFailureAtomicity:
    def test_tail_is_the_commit_point(self, system):
        """A crash between entry persist and tail persist hides the entry."""
        log = gpmlog_create_hcl(system, "/pm/l", 1 << 20, 1, 32)
        region = log.gpm.region
        system.machine.set_ddio(False)

        def k(ctx, log):
            log.insert(ctx, np.array([0xAA], dtype=np.uint32))

        with persist_window(system):
            system.gpu.launch(k, 1, 32, (log,))

        # Simulate a torn second insert: entry chunks persisted, tail not.
        lane0 = log.chunk_offset(0, 0, 1)
        region.write_bytes(lane0, np.frombuffer(np.uint32(0xBB).tobytes(), np.uint8))
        region.persist_range(lane0, 4)
        system.crash()
        log2 = HclLog(log.gpm)
        assert log2.host_tail(0) == 1  # second entry invisible
        assert int(log2.host_read_entry(0, 4).view(np.uint32)[0]) == 0xAA

    def test_crash_before_any_persist_loses_entry(self, system):
        log = gpmlog_create_hcl(system, "/pm/l", 1 << 20, 1, 32)

        def k(ctx, log):
            log.insert(ctx, np.uint32(7))

        # DDIO stays ON: inserts reach only the LLC, never the media.
        system.gpu.launch(k, 1, 32, (log,))
        system.crash()
        assert HclLog(log.gpm).host_tail(0) == 0

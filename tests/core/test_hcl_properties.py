"""Property-based tests of HCL invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import System
from repro.core import gpmlog_create_hcl, persist_window
from repro.core.hcl import HclLog


class TestOffsetUniqueness:
    @settings(max_examples=25, deadline=None)
    @given(
        blocks=st.integers(1, 4),
        tpb=st.sampled_from([32, 64, 96, 128]),
    )
    def test_thread_chunk_offsets_never_collide(self, blocks, tpb):
        """Every (warp, lane, chunk) triple owns a unique 4 B slot."""
        system = System()
        log = gpmlog_create_hcl(system, "/pm/l", 1 << 20, blocks, tpb)
        seen = set()
        warps = blocks * log.warps_per_block
        for warp in range(warps):
            for lane in range(32):
                for chunk in range(min(log.chunks_per_thread, 3)):
                    off = log.chunk_offset(warp, lane, chunk)
                    assert off % 4 == 0
                    assert off >= log.data_offset
                    assert off + 4 <= log.gpm.size
                    assert off not in seen
                    seen.add(off)

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_random_entries_roundtrip_through_pm(self, data):
        """Random per-thread entries are recoverable from the PM image."""
        system = System()
        tpb = 64
        log = gpmlog_create_hcl(system, "/pm/l", 1 << 20, 1, tpb)
        entry_words = data.draw(st.integers(1, 6))
        values = data.draw(
            st.lists(
                st.lists(st.integers(0, 2**32 - 1), min_size=entry_words,
                         max_size=entry_words),
                min_size=tpb, max_size=tpb,
            )
        )

        def k(ctx, log):
            log.insert(ctx, np.array(values[ctx.global_id], dtype=np.uint32))

        with persist_window(system):
            system.gpu.launch(k, 1, tpb, (log,))
        system.crash()
        recovered = HclLog(log.gpm)
        for slot in range(tpb):
            got = recovered.host_read_entry(slot, entry_words * 4).view(np.uint32)
            assert list(got) == values[slot]


class TestTailMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(counts=st.lists(st.integers(0, 5), min_size=32, max_size=32))
    def test_tail_equals_inserted_chunks(self, counts):
        system = System()
        log = gpmlog_create_hcl(system, "/pm/l", 1 << 20, 1, 32)

        def k(ctx, log):
            for j in range(counts[ctx.global_id]):
                log.insert(ctx, np.uint32(j))

        with persist_window(system):
            system.gpu.launch(k, 1, 32, (log,))
        for slot in range(32):
            assert log.host_tail(slot) == counts[slot]

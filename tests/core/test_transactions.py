"""Transaction-flag protocol."""

from repro.core import TransactionFlag


class TestTransactionFlag:
    def test_starts_idle(self, system):
        flag = TransactionFlag.create(system, "/pm/flag")
        assert not flag.active

    def test_begin_commit_cycle(self, system):
        flag = TransactionFlag.create(system, "/pm/flag")
        flag.begin()
        assert flag.active
        flag.commit()
        assert not flag.active

    def test_begin_is_durable_immediately(self, system):
        flag = TransactionFlag.create(system, "/pm/flag")
        flag.begin()
        system.crash()
        assert TransactionFlag.open(system, "/pm/flag").active

    def test_commit_is_durable(self, system):
        flag = TransactionFlag.create(system, "/pm/flag")
        flag.begin()
        flag.commit()
        system.crash()
        assert not TransactionFlag.open(system, "/pm/flag").active

    def test_begin_has_cost(self, system):
        flag = TransactionFlag.create(system, "/pm/flag")
        t0 = system.clock.now
        flag.begin()
        assert system.clock.now > t0

"""gpmcp checkpointing: groups, double buffering, crash consistency."""

import numpy as np
import pytest

from repro.core import (
    CheckpointError,
    Gpmcp,
    gpmcp_checkpoint,
    gpmcp_close,
    gpmcp_create,
    gpmcp_open,
    gpmcp_register,
    gpmcp_restore,
)
from repro.gpu import DeviceArray


def _payload(system, nbytes=4096, value=1.5, name="w"):
    hbm = system.machine.alloc_hbm(name, nbytes)
    arr = DeviceArray(hbm, np.float32)
    arr.np[:] = value
    return arr


class TestCreation:
    def test_create_and_reopen(self, system):
        cp = gpmcp_create(system, "/pm/cp", 4096, elements=2, groups=3)
        assert cp.groups == 3
        cp2 = gpmcp_open(system, "/pm/cp")
        assert cp2.group_bytes == cp.group_bytes

    def test_bad_params_rejected(self, system):
        with pytest.raises(CheckpointError):
            gpmcp_create(system, "/pm/cp", 0, 1, 1)

    def test_open_non_checkpoint_rejected(self, system):
        system.fs.create("/pm/x", 4096)
        from repro.core.mapping import gpm_map

        with pytest.raises(CheckpointError):
            Gpmcp(system, gpm_map(system, "/pm/x"))


class TestRegistration:
    def test_register_device_array(self, system):
        cp = gpmcp_create(system, "/pm/cp", 8192, 4, 1)
        gpmcp_register(cp, _payload(system))

    def test_group_bounds(self, system):
        cp = gpmcp_create(system, "/pm/cp", 4096, 1, 1)
        with pytest.raises(CheckpointError):
            gpmcp_register(cp, _payload(system), group=1)

    def test_element_limit(self, system):
        cp = gpmcp_create(system, "/pm/cp", 65536, 1, 1)
        gpmcp_register(cp, _payload(system, name="a"))
        with pytest.raises(CheckpointError):
            gpmcp_register(cp, _payload(system, name="b"))

    def test_capacity_enforced(self, system):
        cp = gpmcp_create(system, "/pm/cp", 1024, 4, 1)
        with pytest.raises(CheckpointError):
            gpmcp_register(cp, _payload(system, nbytes=8192))

    def test_pm_payload_rejected(self, system):
        cp = gpmcp_create(system, "/pm/cp", 4096, 1, 1)
        pm = system.machine.alloc_pm("pmx", 64)
        with pytest.raises(CheckpointError):
            gpmcp_register(cp, pm)

    def test_checkpoint_without_registration_rejected(self, system):
        cp = gpmcp_create(system, "/pm/cp", 4096, 1, 1)
        with pytest.raises(CheckpointError):
            gpmcp_checkpoint(cp, 0)


class TestCheckpointRestore:
    def test_roundtrip(self, system):
        cp = gpmcp_create(system, "/pm/cp", 8192, 2, 1)
        w = _payload(system, value=2.5)
        gpmcp_register(cp, w)
        gpmcp_checkpoint(cp, 0)
        w.np[:] = 0.0
        gpmcp_restore(cp, 0)
        assert (w.np == 2.5).all()

    def test_multiple_elements_restored_in_order(self, system):
        cp = gpmcp_create(system, "/pm/cp", 16384, 4, 1)
        a = _payload(system, value=1.0, name="a")
        b = _payload(system, value=2.0, name="b")
        gpmcp_register(cp, a)
        gpmcp_register(cp, b)
        gpmcp_checkpoint(cp, 0)
        a.np[:] = 0
        b.np[:] = 0
        gpmcp_restore(cp, 0)
        assert (a.np == 1.0).all()
        assert (b.np == 2.0).all()

    def test_groups_independent(self, system):
        cp = gpmcp_create(system, "/pm/cp", 8192, 2, 2)
        a = _payload(system, value=1.0, name="a")
        b = _payload(system, value=2.0, name="b")
        gpmcp_register(cp, a, group=0)
        gpmcp_register(cp, b, group=1)
        gpmcp_checkpoint(cp, 0)
        gpmcp_checkpoint(cp, 1)
        a.np[:] = 9
        gpmcp_checkpoint(cp, 0)  # group 1's copy untouched
        b.np[:] = 0
        gpmcp_restore(cp, 1)
        assert (b.np == 2.0).all()

    def test_survives_crash_via_reopen(self, system):
        cp = gpmcp_create(system, "/pm/cp", 8192, 2, 1)
        w = _payload(system, value=3.25)
        gpmcp_register(cp, w)
        gpmcp_checkpoint(cp, 0)
        system.crash()
        system.machine.drop_volatile_regions()
        w2 = _payload(system, value=0.0, name="w2")
        cp2 = gpmcp_open(system, "/pm/cp")
        gpmcp_register(cp2, w2)
        gpmcp_restore(cp2, 0)
        assert (w2.np == 3.25).all()

    def test_double_buffering_alternates(self, system):
        cp = gpmcp_create(system, "/pm/cp", 8192, 2, 1)
        w = _payload(system)
        gpmcp_register(cp, w)
        assert cp._selector(0) == 0
        gpmcp_checkpoint(cp, 0)
        assert cp._selector(0) == 1
        gpmcp_checkpoint(cp, 0)
        assert cp._selector(0) == 0

    def test_crash_mid_checkpoint_keeps_old_copy(self, system, monkeypatch):
        """If the selector flip never persists, restore sees the old data."""
        cp = gpmcp_create(system, "/pm/cp", 8192, 2, 1)
        w = _payload(system, value=1.0)
        gpmcp_register(cp, w)
        gpmcp_checkpoint(cp, 0)  # durable copy: 1.0

        # Second checkpoint "crashes" after the data copy but before the
        # selector flip: emulate by making the flip a no-op.
        w.np[:] = 2.0
        monkeypatch.setattr(system.gpu, "store_and_persist_value",
                            lambda *a, **k: 0.0)
        cp.checkpoint(0)
        system.crash()
        system.machine.drop_volatile_regions()
        w2 = _payload(system, value=0.0, name="w2")
        cp2 = gpmcp_open(system, "/pm/cp")
        gpmcp_register(cp2, w2)
        gpmcp_restore(cp2, 0)
        assert (w2.np == 1.0).all()  # previous consistent copy

    def test_eadr_checkpoint_durable(self, eadr_system):
        cp = gpmcp_create(eadr_system, "/pm/cp", 8192, 2, 1)
        w = _payload(eadr_system, value=4.5)
        gpmcp_register(cp, w)
        gpmcp_checkpoint(cp, 0)
        eadr_system.crash()
        eadr_system.machine.drop_volatile_regions()
        w2 = _payload(eadr_system, value=0.0, name="w2")
        cp2 = gpmcp_open(eadr_system, "/pm/cp")
        gpmcp_register(cp2, w2)
        gpmcp_restore(cp2, 0)
        assert (w2.np == 4.5).all()

    def test_close(self, system):
        cp = gpmcp_create(system, "/pm/cp", 4096, 1, 1)
        gpmcp_close(system, cp)
        assert not cp.gpm.mapped

"""Property-based checkpoint invariants: round trips and crash safety."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import System
from repro.core import gpmcp_create, gpmcp_open, gpmcp_register
from repro.gpu import DeviceArray


class TestRoundTripProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        sizes=st.lists(st.integers(4, 2048), min_size=1, max_size=4),
        group_count=st.integers(1, 3),
    )
    def test_multi_element_roundtrip(self, sizes, group_count):
        """Any registration layout restores element-exact."""
        system = System()
        sizes = [s - s % 4 for s in sizes if s >= 4] or [64]
        cp = gpmcp_create(system, "/pm/cp", sum(sizes) + 128 * len(sizes),
                          elements=len(sizes), groups=group_count)
        arrays = []
        rng = np.random.default_rng(0)
        for i, size in enumerate(sizes):
            hbm = system.machine.alloc_hbm(f"e{i}", size)
            arr = DeviceArray(hbm, np.uint32, 0, size // 4)
            arr.np[:] = rng.integers(0, 2**32, size=size // 4, dtype=np.uint32)
            gpmcp_register(cp, arr, group=0)
            arrays.append((arr, arr.np.copy()))
        cp.checkpoint(0)
        for arr, _ in arrays:
            arr.np[:] = 0
        cp.restore(0)
        for arr, original in arrays:
            assert np.array_equal(arr.np, original)

    @settings(max_examples=10, deadline=None)
    @given(n_checkpoints=st.integers(1, 6))
    def test_restore_always_returns_last_checkpoint(self, n_checkpoints):
        """After any number of alternating-buffer checkpoints + a crash."""
        system = System()
        hbm = system.machine.alloc_hbm("w", 1024)
        arr = DeviceArray(hbm, np.uint32, 0, 256)
        cp = gpmcp_create(system, "/pm/cp", 1024, 1, 1)
        gpmcp_register(cp, arr)
        last = None
        for version in range(1, n_checkpoints + 1):
            arr.np[:] = version
            cp.checkpoint(0)
            last = version
        system.crash()
        system.machine.drop_volatile_regions()
        hbm2 = system.machine.alloc_hbm("w2", 1024)
        arr2 = DeviceArray(hbm2, np.uint32, 0, 256)
        cp2 = gpmcp_open(system, "/pm/cp")
        gpmcp_register(cp2, arr2)
        cp2.restore(0)
        assert (arr2.np == last).all()

"""RecoveryManager: system-wide post-crash orchestration."""

import numpy as np
import pytest

from repro.core import TransactionFlag, gpmlog_create_hcl, gpmlog_insert, persist_window
from repro.core.recovery import RecoveryManager
from repro.pstruct import PersistentHashMap, PersistentRing
from repro.sim import CrashInjector, SimulatedCrash


class TestGenericRecovery:
    def test_recovers_interrupted_hashmap(self, system):
        pmap = PersistentHashMap.create(system, "/pm/map", capacity=1024)
        pmap.insert_batch([1, 2], [10, 20])
        inj = CrashInjector(system.machine)
        inj.arm(16)
        with pytest.raises(SimulatedCrash):
            pmap.insert_batch(np.arange(100, 164, dtype=np.uint64),
                              np.arange(100, 164, dtype=np.uint64),
                              crash_injector=inj)
        report = RecoveryManager(system).run()
        actions = {a.path: a for a in report.actions}
        assert actions["/pm/map"].action == "hashmap-undo"
        assert "undone" in actions["/pm/map"].detail
        # siblings claimed by the map, not re-processed as orphans
        assert actions["/pm/map.log"].path  # present
        assert actions["/pm/map.log"].action != "truncate-stale-log"
        recovered = PersistentHashMap.open(system, "/pm/map")
        assert recovered.get(1) == 10
        assert recovered.get(100) is None

    def test_repairs_ring_cursor(self, system):
        ring = PersistentRing.create(system, "/pm/ring", capacity=64)

        def k(ctx, ring):
            if ctx.global_id < 8:
                ring.append(ctx, ctx.global_id)

        with persist_window(system):
            system.gpu.launch(k, 1, 32, (ring,))
        system.crash()
        report = RecoveryManager(system).run()
        actions = {a.path: a for a in report.actions}
        assert actions["/pm/ring"].action == "ring-cursor"
        assert "cursor at 8" in actions["/pm/ring"].detail

    def test_truncates_stale_log_with_idle_flag(self, system):
        log = gpmlog_create_hcl(system, "/pm/app.log", 1 << 20, 1, 32)
        TransactionFlag.create(system, "/pm/app.flag")  # idle

        def k(ctx, log):
            gpmlog_insert(ctx, log, np.uint32(1))

        with persist_window(system):
            system.gpu.launch(k, 1, 32, (log,))
        system.crash()
        report = RecoveryManager(system).run()
        actions = {a.path: a for a in report.actions}
        assert actions["/pm/app.log"].action == "truncate-stale-log"
        assert all(log.host_tail(s) == 0 for s in range(32))

    def test_preserves_log_under_active_flag(self, system):
        log = gpmlog_create_hcl(system, "/pm/app.log", 1 << 20, 1, 32)
        flag = TransactionFlag.create(system, "/pm/app.flag")
        flag.begin()

        def k(ctx, log):
            gpmlog_insert(ctx, log, np.uint32(7))

        with persist_window(system):
            system.gpu.launch(k, 1, 32, (log,))
        system.crash()
        report = RecoveryManager(system).run()
        actions = {a.path: a for a in report.actions}
        assert actions["/pm/app.log"].action == "skip"
        assert log.host_tail(0) == 1  # evidence preserved

    def test_checkpoints_untouched(self, system):
        from repro.core import gpmcp_create

        gpmcp_create(system, "/pm/cp", 4096, 1, 1)
        report = RecoveryManager(system).run()
        actions = {a.path: a for a in report.actions}
        assert actions["/pm/cp"].action == "skip"
        assert "consistent" in actions["/pm/cp"].detail


class TestEdgeCases:
    def test_unknown_structure_reported_not_touched(self, system):
        blob = system.fs.create("/pm/blob", 4096)
        blob.region.write_bytes(0, [0x5A] * 64)
        blob.region.persist_range(0, 64)
        report = RecoveryManager(system).run()
        action = report.action_for("/pm/blob")
        assert action.action == "skip"
        assert action.detail == "unrecognised contents"
        assert "/pm/blob" in report.paths("skip")
        assert blob.region.persisted_view(np.uint8, 0, 1)[0] == 0x5A

    def test_empty_log_with_idle_flag_skipped(self, system):
        gpmlog_create_hcl(system, "/pm/idle.log", 1 << 20, 1, 32)
        TransactionFlag.create(system, "/pm/idle.flag")
        report = RecoveryManager(system).run()
        assert report.action_for("/pm/idle.log").action == "skip"
        assert report.action_for("/pm/idle.log").detail == "empty"

    def test_orphan_log_with_entries_truncated(self, system):
        # entries but no sibling flag at all: committed leftovers
        log = gpmlog_create_hcl(system, "/pm/orphan.log", 1 << 20, 1, 32)

        def k(ctx, log):
            gpmlog_insert(ctx, log, np.uint32(9))

        with persist_window(system):
            system.gpu.launch(k, 1, 32, (log,))
        system.crash()
        report = RecoveryManager(system).run()
        assert report.action_for("/pm/orphan.log").action == "truncate-stale-log"

    def test_action_for_unseen_path(self, system):
        assert RecoveryManager(system).run().action_for("/pm/ghost") is None


class TestHandlers:
    def test_handler_precedence_over_generic_rules(self, system):
        # a registered prefix handler claims a hashmap (and its siblings)
        # before the generic hashmap-undo rule can touch it
        pmap = PersistentHashMap.create(system, "/pm/mine", capacity=512)
        inj = CrashInjector(system.machine)
        inj.arm(8)
        with pytest.raises(SimulatedCrash):
            pmap.insert_batch(np.arange(1, 33, dtype=np.uint64),
                              np.arange(1, 33, dtype=np.uint64),
                              crash_injector=inj)
        claimed = []

        def handler(sys_, file_report):
            claimed.append(file_report.path)
            return 0.0

        manager = RecoveryManager(system)
        manager.register_handler("/pm/mine", handler)
        report = manager.run()
        assert "/pm/mine" in claimed
        assert report.action_for("/pm/mine").action == "handler"
        assert "hashmap-undo" not in {a.action for a in report.actions}
        # siblings match the prefix too: the handler owns all three files
        assert report.action_for("/pm/mine.flag").action == "handler"
        assert report.action_for("/pm/mine.log").action == "handler"

    def test_handler_claims_prefix(self, system):
        log = gpmlog_create_hcl(system, "/pm/custom.log", 1 << 20, 1, 32)
        seen = []

        def handler(sys_, file_report):
            seen.append(file_report.path)
            return 1e-6

        manager = RecoveryManager(system)
        manager.register_handler("/pm/custom", handler)
        report = manager.run()
        assert seen == ["/pm/custom.log"]
        actions = {a.path: a for a in report.actions}
        assert actions["/pm/custom.log"].action == "handler"

    def test_report_describe(self, system):
        PersistentRing.create(system, "/pm/ring", capacity=16)
        report = RecoveryManager(system).run()
        text = report.describe()
        assert "recovery report" in text
        assert "/pm/ring" in text
        assert report.total_elapsed >= 0

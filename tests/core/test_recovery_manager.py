"""RecoveryManager: system-wide post-crash orchestration."""

import numpy as np
import pytest

from repro.core import TransactionFlag, gpmlog_create_hcl, gpmlog_insert, persist_window
from repro.core.recovery import RecoveryManager
from repro.pstruct import PersistentHashMap, PersistentRing
from repro.sim import CrashInjector, SimulatedCrash


class TestGenericRecovery:
    def test_recovers_interrupted_hashmap(self, system):
        pmap = PersistentHashMap.create(system, "/pm/map", capacity=1024)
        pmap.insert_batch([1, 2], [10, 20])
        inj = CrashInjector(system.machine)
        inj.arm(16)
        with pytest.raises(SimulatedCrash):
            pmap.insert_batch(np.arange(100, 164, dtype=np.uint64),
                              np.arange(100, 164, dtype=np.uint64),
                              crash_injector=inj)
        report = RecoveryManager(system).run()
        actions = {a.path: a for a in report.actions}
        assert actions["/pm/map"].action == "hashmap-undo"
        assert "undone" in actions["/pm/map"].detail
        # siblings claimed by the map, not re-processed as orphans
        assert actions["/pm/map.log"].path  # present
        assert actions["/pm/map.log"].action != "truncate-stale-log"
        recovered = PersistentHashMap.open(system, "/pm/map")
        assert recovered.get(1) == 10
        assert recovered.get(100) is None

    def test_repairs_ring_cursor(self, system):
        ring = PersistentRing.create(system, "/pm/ring", capacity=64)

        def k(ctx, ring):
            if ctx.global_id < 8:
                ring.append(ctx, ctx.global_id)

        with persist_window(system):
            system.gpu.launch(k, 1, 32, (ring,))
        system.crash()
        report = RecoveryManager(system).run()
        actions = {a.path: a for a in report.actions}
        assert actions["/pm/ring"].action == "ring-cursor"
        assert "cursor at 8" in actions["/pm/ring"].detail

    def test_truncates_stale_log_with_idle_flag(self, system):
        log = gpmlog_create_hcl(system, "/pm/app.log", 1 << 20, 1, 32)
        TransactionFlag.create(system, "/pm/app.flag")  # idle

        def k(ctx, log):
            gpmlog_insert(ctx, log, np.uint32(1))

        with persist_window(system):
            system.gpu.launch(k, 1, 32, (log,))
        system.crash()
        report = RecoveryManager(system).run()
        actions = {a.path: a for a in report.actions}
        assert actions["/pm/app.log"].action == "truncate-stale-log"
        assert all(log.host_tail(s) == 0 for s in range(32))

    def test_preserves_log_under_active_flag(self, system):
        log = gpmlog_create_hcl(system, "/pm/app.log", 1 << 20, 1, 32)
        flag = TransactionFlag.create(system, "/pm/app.flag")
        flag.begin()

        def k(ctx, log):
            gpmlog_insert(ctx, log, np.uint32(7))

        with persist_window(system):
            system.gpu.launch(k, 1, 32, (log,))
        system.crash()
        report = RecoveryManager(system).run()
        actions = {a.path: a for a in report.actions}
        assert actions["/pm/app.log"].action == "skip"
        assert log.host_tail(0) == 1  # evidence preserved

    def test_checkpoints_untouched(self, system):
        from repro.core import gpmcp_create

        gpmcp_create(system, "/pm/cp", 4096, 1, 1)
        report = RecoveryManager(system).run()
        actions = {a.path: a for a in report.actions}
        assert actions["/pm/cp"].action == "skip"
        assert "consistent" in actions["/pm/cp"].detail


class TestHandlers:
    def test_handler_claims_prefix(self, system):
        log = gpmlog_create_hcl(system, "/pm/custom.log", 1 << 20, 1, 32)
        seen = []

        def handler(sys_, file_report):
            seen.append(file_report.path)
            return 1e-6

        manager = RecoveryManager(system)
        manager.register_handler("/pm/custom", handler)
        report = manager.run()
        assert seen == ["/pm/custom.log"]
        actions = {a.path: a for a in report.actions}
        assert actions["/pm/custom.log"].action == "handler"

    def test_report_describe(self, system):
        PersistentRing.create(system, "/pm/ring", capacity=16)
        report = RecoveryManager(system).run()
        text = report.describe()
        assert "recovery report" in text
        assert "/pm/ring" in text
        assert report.total_elapsed >= 0

"""System composition and top-level package surface."""

import numpy as np
import pytest

import repro
from repro import System
from repro.sim import DEFAULT_CONFIG


class TestSystem:
    def test_default_wiring(self):
        system = System()
        assert system.config is DEFAULT_CONFIG
        assert system.gpu.machine is system.machine
        assert system.cpu.machine is system.machine
        assert system.fs.machine is system.machine
        assert system.dma.machine is system.machine
        assert not system.eadr

    def test_custom_config_propagates(self):
        cfg = DEFAULT_CONFIG.with_overrides(pcie_bw=1e9)
        system = System(cfg)
        assert system.gpu.config.pcie_bw == 1e9
        assert system.machine.pcie._config.pcie_bw == 1e9

    def test_clock_and_stats_are_machine_views(self):
        system = System()
        system.clock.advance(1.0)
        assert system.machine.clock.now == 1.0
        system.stats.syscalls += 1
        assert system.machine.stats.syscalls == 1

    def test_crash_delegates(self):
        system = System()
        pm = system.machine.alloc_pm("p", 64)
        pm.write_bytes(0, [1] * 8)
        system.crash()
        assert not pm.visible.any()
        assert system.machine.crash_count == 1

    def test_eadr_flag(self):
        assert System(eadr=True).eadr
        assert System(eadr=True).machine.eadr

    def test_version_exported(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_independent_systems_do_not_share_state(self):
        a, b = System(), System()
        a.machine.alloc_pm("x", 64)
        assert not b.machine.has_region("x")
        a.clock.advance(5.0)
        assert b.clock.now == 0.0

"""Recovery stress test (Section 6.2): random crash injection.

The paper injects faults at random points with NVBitFI and verifies every
workload recovers.  We sweep random crash points over the recoverable
workloads and assert the recovered durable state is consistent:

* gpKVS / gpDB: the interrupted batch is fully undone (atomicity);
* BFS / PS: execution resumes from the durable state and completes with
  the correct answer;
* DNN: the restored weights equal the last durable checkpoint.
"""

import numpy as np
import pytest

from repro.core.mapping import gpm_map
from repro.sim import CrashInjector, SimulatedCrash
from repro.workloads import (
    BfsConfig,
    DbConfig,
    DnnTraining,
    GpDb,
    GpKvs,
    GraphBfs,
    KvsConfig,
    Mode,
    PrefixSum,
    PrefixSumConfig,
    make_system,
)
from repro.workloads.base import ModeDriver, PersistentBuffer

SEEDS = [1, 2, 3, 4, 5]


class TestKvsCrashSweep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_undo_restores_pre_batch_state(self, seed):
        w = GpKvs(KvsConfig(n_sets=128, ways=8, batch_size=96,
                            set_batches=2, block_dim=32))
        system = make_system(Mode.GPM)
        rng = np.random.default_rng(seed)
        inj = CrashInjector(system.machine, rng)
        inj.arm_random(2 * 96)
        crashed = False
        try:
            w.run(Mode.GPM, system=system, crash_injector=inj)
        except SimulatedCrash:
            crashed = True
        w.recover(system, Mode.GPM)
        table = gpm_map(system, "/pm/gpkvs.table")
        keys = table.view(np.uint64, 0, 128 * 8)
        # Recovered state must equal the state after 0, 1 or 2 *complete*
        # batches - never a partial one.  Replay complete batches on a
        # reference dict to check.
        valid_states = self._reference_states(w)
        durable = {int(k) for k in keys[keys != 0]}
        assert any(durable == s for s in valid_states), (
            f"durable keys match no whole-batch state (crashed={crashed})"
        )

    def _reference_states(self, w):
        from repro.workloads.kvs import hash64

        states = [set()]
        table = {}
        rng = np.random.default_rng(w.config.seed)
        n_pairs = w.config.n_sets * w.config.ways
        for _ in range(w.config.set_batches):
            bkeys = rng.choice(np.arange(1, n_pairs * 4, dtype=np.uint64),
                               size=w.config.batch_size, replace=False)
            bvals = rng.integers(1, (1 << 64) - 1, size=w.config.batch_size,
                                 dtype=np.uint64)
            for k, v in zip(bkeys.tolist(), bvals.tolist()):
                base = (hash64(k) % w.config.n_sets) * w.config.ways
                ways = {
                    slot: key for slot, key in table.items()
                    if base <= slot < base + 8
                }
                target = None
                for slot in range(base, base + 8):
                    if table.get(slot) == k:
                        target = slot
                        break
                if target is None:
                    for slot in range(base, base + 8):
                        if slot not in table:
                            target = slot
                            break
                if target is None:
                    target = base + hash64(k ^ 0x9E3779B97F4A7C15) % 8
                table[target] = k
            states.append(set(table.values()))
        return states


class TestDbCrashSweep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_update_atomicity(self, seed):
        cfg = DbConfig(capacity_rows=1024, initial_rows=256, update_batch=96,
                       update_batches=2, block_dim=32)
        baseline = GpDb("update", DbConfig(**{**cfg.__dict__, "update_batches": 0}))
        baseline.run(Mode.GPM)
        init = baseline._state[3].np.copy()

        w = GpDb("update", cfg)
        system = make_system(Mode.GPM)
        inj = CrashInjector(system.machine, np.random.default_rng(seed))
        inj.arm_random(96)  # inside the first batch
        with pytest.raises(SimulatedCrash):
            w.run(Mode.GPM, system=system, crash_injector=inj)
        w.recover(system, Mode.GPM)
        table = gpm_map(system, "/pm/gpdb.table")
        from repro.workloads.db import _META_BYTES, ROW_COLUMNS

        rows = table.view(np.uint64, _META_BYTES, 1024 * ROW_COLUMNS)
        assert np.array_equal(rows, init)


class TestBfsCrashSweep:
    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_resume_completes_correctly(self, seed):
        w = GraphBfs(BfsConfig(rows=12, cols=20, engine="kernel",
                               shortcut_fraction=0.02))
        system = make_system(Mode.GPM)
        inj = CrashInjector(system.machine, np.random.default_rng(seed))
        inj.arm_random(w.n_nodes)
        try:
            w.run(Mode.GPM, system=system, crash_injector=inj)
        except SimulatedCrash:
            system.machine.drop_volatile_regions()
            driver = ModeDriver(system, Mode.GPM)
            buf = PersistentBuffer.reopen(driver, "/pm/bfs.state")
            w = GraphBfs(BfsConfig(rows=12, cols=20, engine="kernel",
                                   shortcut_fraction=0.02))
            w.run(Mode.GPM, system=system, resume_buffer=buf)
        assert w.verify()


class TestPrefixSumCrashSweep:
    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_rerun_skips_done_blocks_and_completes(self, seed):
        cfg = PrefixSumConfig(n=1024, block_dim=128, arrays=1)
        w = PrefixSum(cfg)
        system = make_system(Mode.GPM)
        inj = CrashInjector(system.machine, np.random.default_rng(seed))
        inj.arm_random(2 * 1024)
        data = np.random.default_rng(cfg.seed).integers(1, 100, size=1024,
                                                        dtype=np.int64)
        try:
            w.run(Mode.GPM, system=system, crash_injector=inj)
        except SimulatedCrash:
            system.machine.drop_volatile_regions()
            driver = ModeDriver(system, Mode.GPM)
            buf = PersistentBuffer.reopen(driver, "/pm/ps0.state")
            w2 = PrefixSum(cfg)
            w2._scan_one(driver, buf, data, None)
            got = buf.visible_view(np.int64, 128 + 8 * 1024, 1024)
            assert np.array_equal(got, np.cumsum(data))


class TestDnnRecovery:
    def test_restore_returns_last_checkpoint(self):
        w = DnnTraining(dataset_size=64)
        w.iterations = 4
        w.run(Mode.GPM)
        system = w._state[0]
        final = w.net.params.pack()
        system.crash()
        system.machine.drop_volatile_regions()
        net = w.restore_into_new_net(system, Mode.GPM)
        assert np.array_equal(net.params.pack(), final)

"""The full workload x persistence-mode matrix, at reduced scale.

Every GPMbench workload must *run and produce a durable, correct result*
under every persistence system it supports; GPUfs must fail exactly where
the paper says.  This is the breadth counterpart to the depth tests in
tests/workloads/.
"""

import pytest

from repro.host.gpufs import GpufsUnsupported
from repro.workloads import (
    BfsConfig,
    BinomialConfig,
    BinomialOptions,
    BlackScholes,
    CfdSolver,
    DbConfig,
    DnnTraining,
    GpDb,
    GpKvs,
    GraphBfs,
    Hotspot,
    KvsConfig,
    Mode,
    PrefixSum,
    PrefixSumConfig,
    Srad,
    SradConfig,
)

ALL_MODES = [Mode.GPM, Mode.GPM_NDP, Mode.GPM_EADR,
             Mode.CAP_FS, Mode.CAP_MM, Mode.CAP_EADR, Mode.GPUFS]


def small_workloads():
    kvs = GpKvs(KvsConfig(n_sets=128, ways=8, batch_size=96, set_batches=1,
                          block_dim=32))
    db = GpDb("update", DbConfig(capacity_rows=1024, initial_rows=256,
                                 update_batch=64, update_batches=1,
                                 block_dim=32))
    dnn = DnnTraining(batch_size=8, dataset_size=32)
    dnn.iterations = 2
    dnn.checkpoint_every = 1
    cfd = CfdSolver(n=24, steps_per_iteration=1)
    cfd.iterations = 2
    cfd.checkpoint_every = 1
    blk = BlackScholes(n_options=4096)
    blk.iterations = 2
    blk.checkpoint_every = 1
    hs = Hotspot(n=32, steps_per_iteration=1)
    hs.iterations = 2
    hs.checkpoint_every = 1
    bfs = GraphBfs(BfsConfig(rows=8, cols=16, shortcut_fraction=0.02))
    srad = Srad(SradConfig(n=24, iterations=2))
    ps = PrefixSum(PrefixSumConfig(n=512, block_dim=128, arrays=1))
    bino = BinomialOptions(BinomialConfig(n_options=16, steps=16))
    return [kvs, db, dnn, cfd, blk, hs, bfs, srad, ps, bino]


#: (workload index, mode) pairs where GPUfs must refuse to run.
GPUFS_FAILS = {"gpKVS", "gpDB (U)", "BLK", "HS", "BFS", "PS", "BINO"}


@pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
def test_every_workload_under_every_mode(mode):
    for workload in small_workloads():
        name = workload.name
        try:
            result = workload.run(mode)
        except GpufsUnsupported:
            assert mode is Mode.GPUFS, f"{name} wrongly unsupported under {mode}"
            assert name in GPUFS_FAILS, f"{name} should run on GPUfs"
            continue
        if mode is Mode.GPUFS:
            assert name not in GPUFS_FAILS, f"{name} should fail on GPUfs"
        assert result.elapsed > 0, f"{name}/{mode.value}: no time elapsed"
        if hasattr(workload, "verify"):
            assert workload.verify(), f"{name}/{mode.value}: verification failed"
        # every non-GPM-internal mode still ends with durable output
        assert result.bytes_persisted > 0 or mode is Mode.GPM_EADR, (
            f"{name}/{mode.value}: nothing persisted"
        )

"""End-to-end semantics of the pluggable persistency models.

Three layers of evidence that the model axis is real, not cosmetic:

1. every GPMbench workload runs to completion (and verifies) under the
   epoch, relaxed and adaptive models;
2. the SIMT engine's fence accounting and event stream change exactly as
   each model's ordering rules dictate (epoch coalescing, relaxed
   kernel-end drains, epoch-boundary events at barriers);
3. ``repro.check`` explores the models' crash-state spaces: the oracle
   targets' frontier taxonomies under ``Epoch`` differ from strict only in
   the drain-coalescing kinds plus the new ``epoch-boundary`` kind, and the
   deliberate fence-ordering bug in ``broken-demo`` is caught under strict
   but *masked* under epoch - intra-epoch coalescing removes precisely the
   ordering the bug depends on.
"""

from collections import Counter

import pytest

from repro.check.explorer import CrashExplorer, explore
from repro.check.oracles import CHECK_TARGETS
from repro.sim import event_to_record
from repro.workloads.base import Mode, make_system

#: frontier kinds whose populations legitimately move when drain rounds
#: coalesce into epochs
_DRAIN_KINDS = {"warp-drain", "optane-epoch", "epoch-boundary"}


# ---------------------------------------------------------------------------
# 1. every workload end-to-end under every new model
# ---------------------------------------------------------------------------


def _small_suite():
    # Small-config instances keep the full matrix fast while still walking
    # every workload's real code path.
    from repro.workloads.bfs import BfsConfig, GraphBfs
    from repro.workloads.binomial import BinomialConfig, BinomialOptions
    from repro.workloads.kvs import GpKvs, KvsConfig
    from repro.workloads.prefix_sum import PrefixSum, PrefixSumConfig

    return [
        PrefixSum(PrefixSumConfig(n=1024, block_dim=128)),
        GpKvs(KvsConfig(n_sets=128, batch_size=64, set_batches=2)),
        BinomialOptions(BinomialConfig(n_options=8, steps=16, block_dim=32)),
        GraphBfs(BfsConfig(rows=16, cols=32)),
    ]


@pytest.mark.parametrize("mode", [Mode.GPM_EPOCH, Mode.GPM_RELAXED,
                                  Mode.GPM_ADAPTIVE])
def test_workloads_complete_and_verify(mode):
    for workload in _small_suite():
        result = workload.run(mode)
        assert result.elapsed > 0
        if hasattr(workload, "verify"):
            assert workload.verify(), (
                f"{workload.name} wrong under {mode.value}")


def test_full_suite_runs_under_every_model():
    from repro.workloads import gpmbench_suite

    for mode in (Mode.GPM_EPOCH, Mode.GPM_ADAPTIVE):
        for workload in gpmbench_suite():
            assert workload.run(mode).elapsed > 0


# ---------------------------------------------------------------------------
# 2. engine-level ordering semantics
# ---------------------------------------------------------------------------


def _fence_twice_kernel(ctx, arr):
    i = ctx.global_id
    arr.write(ctx, i, i + 1)
    ctx.persist()
    arr.write(ctx, i, i + 2)
    ctx.persist()


def _run_fence_twice(mode):
    from repro.core.persist import persist_window
    from repro.gpu.memory import DeviceArray
    import numpy as np

    system = make_system(mode)
    region = system.machine.alloc_pm("/pm/fences", 64 * 8)
    arr = DeviceArray(region, np.int64, 0, 64)
    events = []
    system.events.subscribe(lambda ts, ev: events.append(event_to_record(ts, ev)))
    with persist_window(system):
        res = system.gpu.launch(_fence_twice_kernel, 1, 64, (arr,))
    return res, events, region


def test_epoch_coalesces_fence_rounds():
    # Two fences per thread: strict pays two ordered drain rounds per warp,
    # epoch coalesces them into one, relaxed drains once at kernel end.
    strict, _, _ = _run_fence_twice(Mode.GPM)
    epoch, epoch_events, _ = _run_fence_twice(Mode.GPM_EPOCH)
    relaxed, relaxed_events, _ = _run_fence_twice(Mode.GPM_RELAXED)
    assert strict.accounting.max_warp_rounds == 2
    assert epoch.accounting.max_warp_rounds == 1
    assert relaxed.accounting.max_warp_rounds == 1
    # All models execute the same fences; they just order them differently.
    assert (strict.accounting.fences == epoch.accounting.fences
            == relaxed.accounting.fences == 128)
    # Coalescing is visible on the bus: epoch merges the two per-warp
    # rounds into one drain, and closes exactly one epoch at kernel end.
    strict_drains = [e for _, es, _ in [_run_fence_twice(Mode.GPM)]
                     for e in es if e["event"] == "warp_drain"]
    epoch_drains = [e for e in epoch_events if e["event"] == "warp_drain"]
    assert len(epoch_drains) == len(strict_drains) // 2
    assert [e["epoch"] for e in epoch_events
            if e["event"] == "epoch_boundary"] == [1]
    # Relaxed: every drain is the implicit kernel-end round, no boundaries.
    relaxed_drains = [e for e in relaxed_events if e["event"] == "warp_drain"]
    assert relaxed_drains and all(e["round_no"] == -1 for e in relaxed_drains)
    assert not any(e["event"] == "epoch_boundary" for e in relaxed_events)


def test_epoch_boundaries_land_at_barriers():
    # PS's generator kernels fence on both sides of __syncthreads(): every
    # barrier that saw fences closes one epoch, in order.
    from repro.workloads.prefix_sum import PrefixSum, PrefixSumConfig

    system = make_system(Mode.GPM_EPOCH)
    events = []
    system.events.subscribe(lambda ts, ev: events.append(event_to_record(ts, ev)))
    PrefixSum(PrefixSumConfig(n=512, block_dim=128)).run(
        Mode.GPM_EPOCH, system=system)
    boundaries = [e["epoch"] for e in events if e["event"] == "epoch_boundary"]
    # 4 blocks x 2 epochs per launch, ordinals restarting per launch.
    assert boundaries == list(range(1, 9)) + list(range(1, 9))


def test_strict_event_stream_has_no_epoch_boundaries():
    from repro.workloads.prefix_sum import PrefixSum, PrefixSumConfig

    system = make_system(Mode.GPM)
    events = []
    system.events.subscribe(lambda ts, ev: events.append(event_to_record(ts, ev)))
    PrefixSum(PrefixSumConfig(n=512, block_dim=128)).run(Mode.GPM, system=system)
    assert not any(e["event"] == "epoch_boundary" for e in events)


# ---------------------------------------------------------------------------
# 3. crash-state exploration per model
# ---------------------------------------------------------------------------


def _event_kind_counts(target, mode):
    return Counter(f.kind
                   for f in CrashExplorer(target, mode).record()
                   if f.mechanism == "event")


@pytest.mark.parametrize("target", sorted(CHECK_TARGETS))
def test_epoch_frontiers_change_only_at_drain_coalescing(target):
    # Under Epoch, every oracle target's frontier taxonomy differs from
    # strict only where epoch semantics say it can: non-drain kinds are
    # untouched, drain kinds coalesce (never multiply), and the new
    # epoch-boundary kind appears exactly where kernels fence.
    strict = _event_kind_counts(target, Mode.GPM)
    epoch = _event_kind_counts(target, Mode.GPM_EPOCH)
    assert ({k: v for k, v in strict.items() if k not in _DRAIN_KINDS}
            == {k: v for k, v in epoch.items() if k not in _DRAIN_KINDS})
    for kind in ("warp-drain", "optane-epoch"):
        assert epoch.get(kind, 0) <= strict.get(kind, 0)
    assert "epoch-boundary" not in strict
    fenced = strict.get("warp-drain", 0) > 0
    assert (epoch.get("epoch-boundary", 0) > 0) == fenced


@pytest.mark.parametrize("target,mode", [
    ("prefix_sum", Mode.GPM_EPOCH),
    ("prefix_sum", Mode.GPM_ADAPTIVE),
    ("kvs", Mode.GPM_EPOCH),
    ("kvs", Mode.GPM_ADAPTIVE),
])
def test_check_passes_under_new_models(target, mode):
    report = explore(target, mode, max_frontiers=16)
    assert report.ok, report.describe()
    assert report.frontiers_recorded > 0


def test_broken_demo_bug_is_model_specific():
    # The deliberate sentinel-before-payload fence bug lives in the gap
    # between two strict drain rounds.  Epoch coalescing merges the rounds,
    # so the gap - and the bug - ceases to exist: the models genuinely
    # define different post-crash state sets.
    strict = explore("broken-demo", Mode.GPM, max_frontiers=0)
    assert any(r.status == "violation" for r in strict.results)
    epoch = explore("broken-demo", Mode.GPM_EPOCH, max_frontiers=0)
    assert all(r.status == "ok" for r in epoch.results)


# ---------------------------------------------------------------------------
# experiment plumbing
# ---------------------------------------------------------------------------


def test_run_timings_carry_persistency_model():
    from repro.experiments.runner import RunRequest, _note_timing, drain_run_timings

    drain_run_timings()
    _note_timing(RunRequest("PS", Mode.GPM, False), {"wall_s": 0.5})
    _note_timing(RunRequest("PS", Mode.GPM_EPOCH, False), {"wall_s": 0.5})
    _note_timing(RunRequest("PS", Mode.GPM_EADR, False), {"wall_s": 0.5})
    models = [r["persistency"] for r in drain_run_timings()]
    assert models == ["strict", "epoch", "eadr"]


def test_bench_persistency_models_block():
    from repro.experiments.bench import persistency_models

    block = persistency_models()
    assert "epoch" in block["registered"]
    assert block["mode_to_model"]["gpm"] == "strict"
    assert block["mode_to_model"]["gpm-adaptive"] == "adaptive"
    assert block["mode_to_model"]["gpm-eadr"] == "eadr"

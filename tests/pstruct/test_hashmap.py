"""PersistentHashMap: durability, atomicity, recovery."""

import numpy as np
import pytest

from repro.core.errors import GpmError
from repro.pstruct import PersistentHashMap
from repro.sim import CrashInjector, SimulatedCrash


@pytest.fixture
def pmap(system):
    return PersistentHashMap.create(system, "/pm/map", capacity=2048)


class TestBasics:
    def test_insert_and_get(self, system, pmap):
        pmap.insert_batch([10, 20, 30], [100, 200, 300])
        assert pmap.get(20) == 200
        assert pmap.get(99) is None
        assert len(pmap) == 3

    def test_inserts_are_durable(self, system, pmap):
        pmap.insert_batch([5], [55])
        system.crash()
        assert pmap.get(5, durable=True) == 55

    def test_overwrite_same_key(self, system, pmap):
        pmap.insert_batch([7], [1])
        pmap.insert_batch([7], [2])
        assert pmap.get(7) == 2
        assert len(pmap) == 1

    def test_items(self, system, pmap):
        pmap.insert_batch([1, 2], [10, 20])
        assert dict(pmap.items()) == {1: 10, 2: 20}

    def test_open_after_crash(self, system, pmap):
        pmap.insert_batch([3], [33])
        system.crash()
        reopened = PersistentHashMap.open(system, "/pm/map")
        reopened.recover()
        assert reopened.get(3) == 33

    def test_capacity_rounds_to_ways(self, system):
        m = PersistentHashMap.create(system, "/pm/m2", capacity=100)
        assert m.capacity % 8 == 0
        assert m.capacity >= 100


class TestValidation:
    def test_zero_key_rejected(self, pmap):
        with pytest.raises(GpmError):
            pmap.insert_batch([0], [1])

    def test_duplicate_keys_rejected(self, pmap):
        with pytest.raises(GpmError):
            pmap.insert_batch([4, 4], [1, 2])

    def test_mismatched_lengths_rejected(self, pmap):
        with pytest.raises(GpmError):
            pmap.insert_batch([1, 2], [1])

    def test_oversized_batch_rejected(self, pmap):
        with pytest.raises(GpmError):
            pmap.insert_batch(np.arange(1, 10_000, dtype=np.uint64),
                              np.arange(1, 10_000, dtype=np.uint64))

    def test_open_wrong_file(self, system):
        system.fs.create("/pm/junk", 4096)
        with pytest.raises(GpmError):
            PersistentHashMap.open(system, "/pm/junk")


class TestCrashAtomicity:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_interrupted_batch_fully_undone(self, system, pmap, seed):
        pmap.insert_batch([100, 200], [1, 2])  # committed baseline
        inj = CrashInjector(system.machine, np.random.default_rng(seed))
        inj.arm_random(96)
        keys = np.arange(1000, 1096, dtype=np.uint64)
        with pytest.raises(SimulatedCrash):
            pmap.insert_batch(keys, keys * 2, crash_injector=inj)
        recovered = PersistentHashMap.open(system, "/pm/map")
        recovered.recover()
        assert recovered.get(100) == 1
        assert recovered.get(200) == 2
        for k in keys.tolist():
            assert recovered.get(k) is None, f"partial insert {k} leaked"

    def test_recover_without_crash_is_noop(self, system, pmap):
        pmap.insert_batch([9], [90])
        before = dict(pmap.items())
        pmap.recover()
        assert dict(pmap.items()) == before

"""PersistentRing: commit sentinels, holes, cursor recovery."""

import numpy as np
import pytest

from repro.core.errors import GpmError
from repro.core.persist import persist_window
from repro.pstruct import PersistentRing
from repro.sim import CrashInjector, SimulatedCrash


def _append_kernel(ctx, ring, n):
    if ctx.global_id < n:
        ring.append(ctx, 1000 + ctx.global_id)


@pytest.fixture
def ring(system):
    return PersistentRing.create(system, "/pm/ring", capacity=512)


class TestAppend:
    def test_appends_committed_and_ordered(self, system, ring):
        with persist_window(system):
            system.gpu.launch(_append_kernel, 2, 64, (ring, 100))
        entries = ring.committed()
        assert len(entries) == 100
        assert [t for t, _ in entries] == list(range(100))
        assert sorted(v for _, v in entries) == [1000 + i for i in range(100)]

    def test_durable_after_crash(self, system, ring):
        with persist_window(system):
            system.gpu.launch(_append_kernel, 1, 32, (ring, 32))
        system.crash()
        assert len(ring.committed()) == 32
        assert ring.holes() == []

    def test_full_ring_raises(self, system):
        small = PersistentRing.create(system, "/pm/small", capacity=16)

        def k(ctx, ring):
            with pytest.raises(GpmError):
                for _ in range(100):
                    ring.append(ctx, 1)

        with persist_window(system):
            system.gpu.launch(k, 1, 1, (small,))

    def test_reset(self, system, ring):
        with persist_window(system):
            system.gpu.launch(_append_kernel, 1, 32, (ring, 10))
        ring.reset()
        assert ring.committed() == []
        assert ring.reserved() == 0

    def test_bad_capacity(self, system):
        with pytest.raises(GpmError):
            PersistentRing.create(system, "/pm/bad", capacity=0)


class TestCrashSemantics:
    def test_torn_record_is_invisible(self, system, ring):
        """Payload persisted, sentinel not: the record must not appear."""
        region = ring.gpm.region
        # forge a torn append at ticket 5: payload only
        slots = ring.gpm.view(np.uint64, 128, 512 * 2)
        slots[5 * 2 + 1] = 999
        region.persist_range(128 + (5 * 2 + 1) * 8, 8)
        system.crash()
        assert all(t != 5 for t, _ in ring.committed())

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_crash_sweep_no_torn_records(self, system, seed):
        ring = PersistentRing.create(system, f"/pm/ring{seed}", capacity=512)
        inj = CrashInjector(system.machine, np.random.default_rng(seed))
        inj.arm_random(128)
        try:
            with persist_window(system):
                system.gpu.launch(_append_kernel, 4, 32, (ring, 128),
                                  crash_injector=inj)
        except SimulatedCrash:
            pass
        entries = ring.committed()
        # every committed record carries its correct payload
        for ticket, value in entries:
            assert value == 1000 + ticket or value >= 1000
        # prefix is gap-free up to the first hole
        prefix = ring.durable_prefix()
        assert [t for t, _ in prefix] == list(range(len(prefix)))

    def test_cursor_recovery_prevents_overwrite(self, system, ring):
        with persist_window(system):
            system.gpu.launch(_append_kernel, 1, 32, (ring, 32))
        # simulate losing the cursor's durability but not the records
        ring.gpm.view(np.uint64, 16, 1)[0] = 32  # visible is fine...
        ring.gpm.region.persisted_view(np.uint64, 16, 1)[0] = 2  # ...durable lags
        system.crash()
        assert ring.reserved() == 2  # the stale durable cursor
        next_ticket = ring.recover()
        assert next_ticket == 32
        # appends now continue past the committed records
        with persist_window(system):
            system.gpu.launch(_append_kernel, 1, 32, (ring, 8))
        tickets = [t for t, _ in ring.committed()]
        assert len(tickets) == len(set(tickets)) == 40

"""Property-based crash testing of the persistent ring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import System
from repro.core.persist import persist_window
from repro.pstruct import PersistentRing
from repro.sim import CrashInjector, SimulatedCrash


def _append_kernel(ctx, ring, n):
    if ctx.global_id < n:
        ring.append(ctx, 7_000_000 + ctx.global_id)


class TestRingProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        n_appends=st.integers(1, 200),
        crash_at=st.integers(0, 250),
    )
    def test_crash_anywhere_never_tears_or_reorders(self, n_appends, crash_at):
        system = System()
        ring = PersistentRing.create(system, "/pm/r", capacity=512)
        inj = CrashInjector(system.machine)
        inj.arm(crash_at)
        blocks = (n_appends + 31) // 32
        crashed = False
        try:
            with persist_window(system):
                system.gpu.launch(_append_kernel, blocks, 32, (ring, n_appends),
                                  crash_injector=inj)
        except SimulatedCrash:
            crashed = True
        if not crashed:
            system.crash()
        entries = ring.committed()
        tickets = [t for t, _ in entries]
        # invariant 1: committed tickets are unique
        assert len(tickets) == len(set(tickets))
        # invariant 2: every committed record carries its staged payload
        for ticket, value in entries:
            assert 7_000_000 <= value < 7_000_000 + n_appends
        # invariant 3: never more commits than appends attempted
        assert len(entries) <= n_appends
        # invariant 4: recovery yields a usable ring
        next_ticket = ring.recover()
        assert next_ticket >= len(ring.durable_prefix())

    @settings(max_examples=10, deadline=None)
    @given(rounds=st.lists(st.integers(1, 60), min_size=1, max_size=4))
    def test_multiple_append_rounds_accumulate(self, rounds):
        system = System()
        ring = PersistentRing.create(system, "/pm/r", capacity=512)
        total = 0
        for n in rounds:
            if total + n > 512:
                break
            with persist_window(system):
                system.gpu.launch(_append_kernel, (n + 31) // 32, 32, (ring, n))
            total += n
        assert len(ring.committed(durable=False)) == total
        system.crash()
        assert len(ring.committed()) == total

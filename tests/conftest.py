"""Shared fixtures for the GPM reproduction test suite."""

import pytest

from repro import System
from repro.sim import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine()


@pytest.fixture
def system() -> System:
    return System()


@pytest.fixture
def eadr_system() -> System:
    return System(eadr=True)

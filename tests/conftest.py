"""Shared fixtures for the GPM reproduction test suite."""

import pytest

from repro import System
from repro.sim import Machine


@pytest.fixture(autouse=True, scope="module")
def _clear_runner_cache():
    """Isolate the experiments runner's result cache between test modules.

    The cache is keyed by (workload, mode, config), so results are shared
    *within* a module for speed but never leak stale state across modules
    (e.g. after a module monkeypatches ``repro.sim.config.DEFAULT_CONFIG``).
    """
    from repro.experiments import runner

    yield
    runner.clear_cache()


@pytest.fixture
def machine() -> Machine:
    return Machine()


@pytest.fixture
def system() -> System:
    return System()


@pytest.fixture
def eadr_system() -> System:
    return System(eadr=True)

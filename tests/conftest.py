"""Shared fixtures for the GPM reproduction test suite."""

import pytest

from repro import System
from repro.sim import Machine


@pytest.fixture(autouse=True, scope="session")
def _isolated_cache_dir(tmp_path_factory):
    """Point the default disk-cache location at a throw-away directory.

    CLI tests drive ``main()`` in-process; without this, commands that
    enable the persistent cache by default would write into the
    developer's real ``~/.cache/repro``.
    """
    import os

    prev = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if prev is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = prev


@pytest.fixture(autouse=True, scope="module")
def _clear_runner_cache():
    """Isolate the experiments runner's result cache between test modules.

    The cache is keyed by (workload, mode, config), so results are shared
    *within* a module for speed but never leak stale state across modules
    (e.g. after a module monkeypatches ``repro.sim.config.DEFAULT_CONFIG``).
    The engine's process-wide configuration (disk cache, pool width) is
    reset too, in case a test module installed either.
    """
    from repro.experiments import runner

    yield
    runner.clear_cache()
    runner.set_disk_cache(None)
    runner.set_default_jobs(1)


@pytest.fixture
def machine() -> Machine:
    return Machine()


@pytest.fixture
def system() -> System:
    return System()


@pytest.fixture
def eadr_system() -> System:
    return System(eadr=True)

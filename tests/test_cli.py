"""The python -m repro command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure9" in out
        assert "gpKVS" in out
        assert "cxl_projection" in out

    def test_run_single_artefact(self, capsys, tmp_path):
        assert main(["run", "figure12_patterns", "--reports", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "12.5" in out
        assert (tmp_path / "out_figure12_patterns.txt").exists()

    def test_run_unknown_artefact(self):
        with pytest.raises(SystemExit):
            main(["run", "figure99"])

    def test_workload(self, capsys):
        assert main(["workload", "PS", "--mode", "gpm"]) == 0
        out = capsys.readouterr().out
        assert "PS under gpm" in out
        assert "simulated time" in out

    def test_workload_unknown(self):
        with pytest.raises(SystemExit):
            main(["workload", "nope"])

    def test_workload_bad_mode(self):
        # Unknown modes exit through the registry with the known names.
        with pytest.raises(SystemExit) as err:
            main(["workload", "PS", "--mode", "warp-drive"])
        msg = str(err.value)
        assert "warp-drive" in msg and "gpm-epoch" in msg and "cap-mm" in msg

    def test_workload_persistency_model_modes(self, capsys):
        assert main(["workload", "PS", "--mode", "gpm-epoch"]) == 0
        assert "PS under gpm-epoch" in capsys.readouterr().out
        assert main(["workload", "PS", "--mode", "gpm-adaptive"]) == 0
        assert "PS under gpm-adaptive" in capsys.readouterr().out

    def test_check_epoch_mode(self, capsys):
        assert main(["check", "prefix_sum", "--mode", "gpm-epoch",
                     "--max-frontiers", "4"]) == 0
        assert "prefix_sum" in capsys.readouterr().out


class TestEngineCli:
    def test_run_with_jobs_and_cache_dir(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main(["run", "figure12_patterns", "--reports",
                     str(tmp_path / "r1"), "--jobs", "2",
                     "--cache-dir", str(cache)]) == 0
        first = capsys.readouterr().out
        assert cache.exists()  # the table landed in the persistent cache
        assert main(["run", "figure12_patterns", "--reports",
                     str(tmp_path / "r2"), "--cache-dir", str(cache)]) == 0
        second = capsys.readouterr().out
        assert first.replace("r1", "") == second.replace("r2", "")

    def test_run_no_cache_writes_nothing(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["run", "figure12_patterns", "--reports",
                     str(tmp_path / "r"), "--no-cache",
                     "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert not cache.exists()

    def test_bench_writes_record(self, capsys, tmp_path):
        out = tmp_path / "BENCH_experiments.json"
        assert main(["bench", "--artefacts", "figure12_patterns",
                     "--jobs", "2", "--out", str(out)]) == 0
        capsys.readouterr()
        import json

        record = json.loads(out.read_text())
        assert record["artefacts"] == ["figure12_patterns"]
        assert record["cold_sequential_s"] > 0
        assert record["warm_s"] < record["cold_sequential_s"]
        assert record["jobs"] == 2
        assert 1 <= record["effective_jobs"] <= 2
        # Per-run attribution: every leg reports its executed runs and their
        # wall-clock; the converted workloads must be on the warp lane.
        assert set(record["legs"]) == {"cold_sequential", "cold_parallel",
                                       "warm"}
        for leg in record["legs"].values():
            assert leg["runs_executed"] == len(leg["runs_detail"])
            for entry in leg["runs_detail"]:
                assert entry["wall_s"] >= 0
        assert record["execution_lanes"] == {
            "PS": "warp", "KVS": "warp", "BINO": "warp",
            "SRAD": "warp", "BFS": "warp", "DB-I": "warp", "DB-U": "warp",
        }


class TestServeCli:
    ARGS = ["serve", "--tenants", "2", "--shards", "2", "--rate", "300000",
            "--duration", "0.0003", "--seed", "11"]

    def test_serve_prints_summary(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "served 2 tenants" in out
        assert "2 log shards, seed 11" in out
        assert "throughput" in out and "p99" in out

    def test_serve_json_is_byte_identical_per_seed(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--json"]) == 0
        assert capsys.readouterr().out == first
        assert main(["serve"] + self.ARGS[1:-1] + ["12", "--json"]) == 0
        assert capsys.readouterr().out != first

    def test_bench_service_smoke_writes_and_validates(self, capsys, tmp_path):
        out = tmp_path / "BENCH_service.json"
        assert main(["bench", "--service", "--smoke", "--out", str(out)]) == 0
        printed = capsys.readouterr()
        assert "saved" in printed.out
        assert "FAIL" not in printed.err
        import json

        record = json.loads(out.read_text())
        assert record["smoke"] is True
        assert record["summary"]["completed"] > 0


class TestCheckCli:
    def test_list_includes_check_targets(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "check targets" in out
        assert "broken-demo" in out

    def test_check_clean_target_exits_zero(self, capsys):
        assert main(["check", "ring", "--max-frontiers", "8"]) == 0
        out = capsys.readouterr().out
        assert "PASS: zero invariant violations" in out
        assert "frontiers explored" in out

    def test_check_broken_target_exits_nonzero_with_reproducer(self, capsys):
        assert main(["check", "broken-demo"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATIONS" in out
        assert "reproduce: PYTHONPATH=src python -m repro check broken-demo" in out

    def test_check_single_frontier_replay(self, capsys):
        assert main(["check", "broken-demo", "--frontier", "event:4"]) == 1
        out = capsys.readouterr().out
        assert "FAIL (violation)" in out
        assert main(["check", "ring", "--frontier", "event:0"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["check", "nope"])


class TestLitmusCli:
    def test_litmus_campaign_passes_and_catches_sentinels(self, capsys):
        # Bounded version of the CI job: every clean config point must
        # pass AND both planted sentinel bugs must be caught.
        assert main(["check", "--litmus", "2", "--seed", "7",
                     "--no-corpus", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "fence-order" in out and "caught" in out
        assert "epoch-boundary" in out
        assert "UNDETECTED" not in out

    def test_litmus_campaign_uses_disk_cache(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        args = ["check", "--litmus", "1", "--seed", "3", "--no-corpus",
                "--cache-dir", str(cache)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert list(cache.glob("litmus-*.json"))
        assert main(args) == 0
        assert capsys.readouterr().out == cold

    def test_litmus_replay_clean_point(self, capsys):
        assert main(["check", "--litmus-replay", "7:0",
                     "--litmus-config", "strict:window:adr"]) == 0
        out = capsys.readouterr().out
        assert "litmus 7:0" in out
        assert "ok" in out

    def test_litmus_replay_mutant_fails_with_reproducer(self, capsys):
        assert main(["check", "--litmus-replay", "7:0",
                     "--litmus-config", "epoch:window:adr",
                     "--mutant", "epoch-boundary"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert ("reproduce: PYTHONPATH=src python -m repro check "
                "--litmus-replay 7:0") in out
        assert "--mutant epoch-boundary" in out

    def test_litmus_replay_bad_spec(self):
        with pytest.raises(SystemExit):
            main(["check", "--litmus-replay", "seven"])

    def test_check_without_target_or_litmus_errors(self):
        with pytest.raises(SystemExit):
            main(["check"])

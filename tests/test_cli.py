"""The python -m repro command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure9" in out
        assert "gpKVS" in out
        assert "cxl_projection" in out

    def test_run_single_artefact(self, capsys, tmp_path):
        assert main(["run", "figure12_patterns", "--reports", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "12.5" in out
        assert (tmp_path / "out_figure12_patterns.txt").exists()

    def test_run_unknown_artefact(self):
        with pytest.raises(SystemExit):
            main(["run", "figure99"])

    def test_workload(self, capsys):
        assert main(["workload", "PS", "--mode", "gpm"]) == 0
        out = capsys.readouterr().out
        assert "PS under gpm" in out
        assert "simulated time" in out

    def test_workload_unknown(self):
        with pytest.raises(SystemExit):
            main(["workload", "nope"])

    def test_workload_bad_mode(self):
        with pytest.raises(ValueError):
            main(["workload", "PS", "--mode", "warp-drive"])

"""Pending drain batches are keyed by Region.token, never by id().

Regression for the same id-reuse aliasing class already fixed twice: the
Optane sequentiality streams (PR: stream identity) and the LLC dirty
lines.  A region freed and re-allocated while a kernel still holds
unfenced stores must never have its segments merged into the dead
region's bucket — CPython happily hands the new object the dead one's
``id()``.
"""

import numpy as np

from repro.gpu.kernel import _WarpDrainBuffer


class TestDrainBufferTokenKeying:
    def test_buckets_key_by_region_token(self, machine):
        r = machine.alloc_pm("x", 1024)
        buf = _WarpDrainBuffer()
        buf.add(0, r, 0, 4)
        buf.add_many(1, [(r, 8, 4), (r, 16, 4)])
        buf.add_arrays(2, r, np.array([32], dtype=np.int64),
                       np.array([4], dtype=np.int64))
        for round_no in (0, 1, 2):
            assert list(buf.rounds[round_no]) == [r.token]

    def test_free_realloc_mid_kernel_never_merges(self, machine):
        # Repeat to give CPython every chance to hand the fresh Region the
        # dead one's id(); under token keying the two allocations must land
        # in distinct buckets every single time, via all three append paths.
        for _ in range(32):
            buf = _WarpDrainBuffer()
            r1 = machine.alloc_pm("alias", 1024)
            t1 = r1.token
            buf.add(0, r1, 0, 4)
            buf.add_many(0, [(r1, 4, 4)])
            machine.free(r1)
            del r1
            r2 = machine.alloc_pm("alias", 1024)
            buf.add(0, r2, 128, 4)
            buf.add_arrays(0, r2, np.array([256], dtype=np.int64),
                           np.array([4], dtype=np.int64))
            per_region = buf.rounds[0]
            assert set(per_region) == {t1, r2.token}
            dead_region, dead_starts, _ = per_region[t1]
            live_region, live_starts, _ = per_region[r2.token]
            assert dead_region is not live_region
            assert dead_starts == [0, 4]
            assert live_starts[0] == 128
            machine.free(r2)
            del r2

"""Property-based tests of the kernel engine's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import System
from repro.gpu import DeviceArray

# Each thread stores its id at a (possibly shared-line) derived offset and
# fences; afterwards the persisted image must exactly reflect program order.
pattern = st.lists(st.integers(0, 500), min_size=1, max_size=96)


class TestFunctionalCorrectness:
    @settings(max_examples=25, deadline=None)
    @given(slots=pattern)
    def test_fenced_stores_all_persist(self, slots):
        system = System()
        system.machine.set_ddio(False)
        region = system.machine.alloc_pm("p", 4096)
        arr = DeviceArray(region, np.uint32)
        n = len(slots)

        def k(ctx, a):
            if ctx.global_id < n:
                a.write(ctx, slots[ctx.global_id], ctx.global_id + 1)
                ctx.persist()

        blocks = (n + 31) // 32
        system.gpu.launch(k, blocks, 32, (arr,))
        # Later threads overwrite earlier ones at shared slots; the engine
        # executes in thread order, so the last writer wins.
        expected = np.zeros(1024, dtype=np.uint32)
        for tid, slot in enumerate(slots):
            expected[slot] = tid + 1
        assert np.array_equal(arr.np_persisted[:1024], expected)

    @settings(max_examples=25, deadline=None)
    @given(slots=pattern)
    def test_visible_equals_persisted_after_fences(self, slots):
        system = System()
        system.machine.set_ddio(False)
        region = system.machine.alloc_pm("p", 4096)
        arr = DeviceArray(region, np.uint32)
        n = len(slots)

        def k(ctx, a):
            if ctx.global_id < n:
                a.write(ctx, slots[ctx.global_id], 7)
                ctx.persist()

        system.gpu.launch(k, (n + 31) // 32, 32, (arr,))
        assert region.unpersisted_bytes() == 0


class TestTransactionBounds:
    @settings(max_examples=20, deadline=None)
    @given(
        n_threads=st.integers(1, 256),
        stride_words=st.sampled_from([1, 2, 4, 16, 32]),
    )
    def test_tx_count_between_ideal_and_naive(self, n_threads, stride_words):
        """Coalesced tx count is bounded by [bytes/128, one per store]."""
        system = System()
        system.machine.set_ddio(False)
        region = system.machine.alloc_pm("p", 1 << 20)
        arr = DeviceArray(region, np.uint32)

        def k(ctx, a):
            if ctx.global_id < n_threads:
                a.write(ctx, ctx.global_id * stride_words, 1)
                ctx.persist()

        res = system.gpu.launch(k, (n_threads + 127) // 128, 128, (arr,))
        tx = res.accounting.host_write_tx
        span_bytes = n_threads * stride_words * 4
        ideal = max(1, -(-span_bytes // 128))
        assert ideal <= tx <= n_threads

    @settings(max_examples=20, deadline=None)
    @given(n_threads=st.integers(1, 512))
    def test_elapsed_monotone_in_fence_rounds(self, n_threads):
        system = System()
        system.machine.set_ddio(False)
        region = system.machine.alloc_pm("p", 1 << 20)
        arr = DeviceArray(region, np.uint32)

        def one_round(ctx, a):
            if ctx.global_id < n_threads:
                a.write(ctx, ctx.global_id, 1)
                ctx.persist()

        def three_rounds(ctx, a):
            if ctx.global_id < n_threads:
                for j in range(3):
                    a.write(ctx, ctx.global_id + j * 1024, 1)
                    ctx.persist()

        blocks = (n_threads + 127) // 128
        t1 = system.gpu.launch(one_round, blocks, 128, (arr,)).elapsed
        t3 = system.gpu.launch(three_rounds, blocks, 128, (arr,)).elapsed
        assert t3 > t1


class TestGeneratorEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(values=st.lists(st.integers(0, 1000), min_size=32, max_size=32))
    def test_barrier_reduction_matches_numpy(self, values):
        """Block-wide max via shared memory and one barrier."""
        system = System()
        region = system.machine.alloc_pm("p", 4096)
        arr = DeviceArray(region, np.int64)

        def k(ctx, a):
            ctx.shared.setdefault("vals", {})[ctx.thread_in_block] = \
                values[ctx.global_id]
            yield
            if ctx.thread_in_block == 0:
                a.write(ctx, 0, max(ctx.shared["vals"].values()))

        system.gpu.launch(k, 1, 32, (arr,))
        assert int(arr.np[0]) == max(values)

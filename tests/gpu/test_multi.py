"""Multi-GPU coordination over one persistence domain."""

import numpy as np
import pytest

from repro.core.persist import persist_window
from repro.gpu import DeviceArray, MultiGpu
from repro.experiments.multigpu import multi_gpu_scaling


def _writer(ctx, arr, tag):
    arr.write(ctx, ctx.global_id, tag)
    ctx.persist()


class TestMultiGpu:
    def test_construction(self, system):
        multi = MultiGpu(system.machine, 3)
        assert len(multi) == 3
        with pytest.raises(ValueError):
            MultiGpu(system.machine, 0)

    def test_parallel_launch_functional_effects(self, system):
        system.machine.set_ddio(False)
        multi = MultiGpu(system.machine, 2)
        a = DeviceArray(system.machine.alloc_pm("a", 4096), np.uint32)
        b = DeviceArray(system.machine.alloc_pm("b", 4096), np.uint32)
        group = multi.parallel_launch([
            (_writer, 1, 64, (a, 1)),
            (_writer, 1, 64, (b, 2)),
        ])
        assert (a.np_persisted[:64] == 1).all()
        assert (b.np_persisted[:64] == 2).all()
        assert len(group.per_gpu) == 2

    def test_overlap_charges_critical_path_not_sum(self, system):
        system.machine.set_ddio(False)
        multi = MultiGpu(system.machine, 2)
        a = DeviceArray(system.machine.alloc_pm("a", 65536), np.uint32)
        b = DeviceArray(system.machine.alloc_pm("b", 65536), np.uint32)
        group = multi.parallel_launch([
            (_writer, 8, 128, (a, 1)),
            (_writer, 8, 128, (b, 2)),
        ])
        per_gpu_sum = sum(r.elapsed for r in group.per_gpu)
        assert group.elapsed < per_gpu_sum
        assert group.elapsed >= max(r.elapsed for r in group.per_gpu)

    def test_too_many_launches_rejected(self, system):
        multi = MultiGpu(system.machine, 1)
        a = DeviceArray(system.machine.alloc_pm("a", 4096), np.uint32)
        with pytest.raises(ValueError):
            multi.parallel_launch([
                (_writer, 1, 32, (a, 1)),
                (_writer, 1, 32, (a, 2)),
            ])
        with pytest.raises(ValueError):
            multi.parallel_launch([])


class TestScalingExperiment:
    @pytest.fixture(scope="class")
    def table(self):
        return multi_gpu_scaling()

    def test_two_gpus_nearly_double(self, table):
        assert table.rows[1][2] > 1.8

    def test_saturates_at_media_bandwidth(self, table):
        assert table.rows[-1][1] <= 12.6
        assert table.rows[-1][3] is True  # media_bound

    def test_monotone_nondecreasing(self, table):
        thr = table.column("throughput_gbps")
        assert all(b >= a * 0.999 for a, b in zip(thr, thr[1:]))

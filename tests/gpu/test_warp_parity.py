"""Scalar-vs-warp lane parity: the dual-path equivalence harness.

Every converted workload runs twice from identical seeds - once with the
vectorized lane forced off (the reference interpreter), once on the warp
lane - and the two runs must agree on *everything an experiment can
observe*: elapsed simulated time, machine stats, the full timestamped
event stream, persisted and visible memory images byte for byte, and the
golden-report record ``repro all`` would serialise.
"""

import numpy as np
import pytest

from repro.experiments.diskcache import result_to_record
from repro.gpu.warp import resolve_warp_impl, scalar_lane
from repro.sim import event_to_record
from repro.sim.crash import CrashInjector
from repro.workloads.base import Mode, make_system
from repro.workloads.bfs import BfsConfig, GraphBfs, bfs_kernel
from repro.workloads.binomial import BinomialConfig, BinomialOptions, pricing_kernel
from repro.workloads.db import (
    DbConfig,
    GpDb,
    insert_kernel,
    select_kernel,
    update_kernel,
    update_recovery_kernel,
)
from repro.workloads.kvs import GpKvs, KvsConfig, set_kernel
from repro.workloads.prefix_sum import (
    PrefixSum,
    PrefixSumConfig,
    partial_sums_kernel,
)
from repro.workloads.srad import Srad, SradConfig, srad_plane_kernel


def _run_collected(factory, mode, forced_scalar):
    """Run a fresh workload instance, collecting the full event stream."""
    workload = factory()
    system = make_system(mode)
    events = []
    system.events.subscribe(
        lambda ts, ev: events.append(event_to_record(ts, ev))
    )
    if forced_scalar:
        with scalar_lane():
            result = workload.run(mode, system=system)
    else:
        result = workload.run(mode, system=system)
    regions = {
        name: (region.visible.copy(),
               None if region.persisted is None else region.persisted.copy())
        for name, region in system.machine._regions.items()
    }
    return workload, result, events, regions, system


CASES = [
    # The persistency-model modes ride the same harness: parity must hold
    # under every fence policy (strict, epoch, relaxed) and data path
    # (direct, adaptive staged), not just the seed's strict model.
    ("ps", lambda: PrefixSum(PrefixSumConfig(n=2048, block_dim=256)),
     [Mode.GPM, Mode.GPM_NDP, Mode.CAP_MM,
      Mode.GPM_EPOCH, Mode.GPM_RELAXED, Mode.GPM_ADAPTIVE]),
    ("kvs", lambda: GpKvs(KvsConfig(n_sets=512, batch_size=256, set_batches=2)),
     [Mode.GPM, Mode.GPM_EADR, Mode.CAP_MM,
      Mode.GPM_EPOCH, Mode.GPM_RELAXED, Mode.GPM_ADAPTIVE]),
    # Tiny table: intra-warp same-set collisions force the sequential
    # slot-selection fallback, including evictions.
    ("kvs-collide", lambda: GpKvs(KvsConfig(n_sets=16, batch_size=128,
                                            set_batches=3)),
     [Mode.GPM]),
    # GET batches exercise the warp-vectorized read path and the HBM mirror.
    ("kvs-mixed", lambda: GpKvs(KvsConfig(set_batches=1, batch_size=128,
                                          get_batches=2, get_batch_size=256)),
     [Mode.GPM]),
    ("bino", lambda: BinomialOptions(BinomialConfig(n_options=24, steps=16,
                                                    block_dim=32)),
     [Mode.GPM, Mode.CAP_MM]),
    # SRAD's per-plane stencil store kernel (streaming, unaligned).
    ("srad", lambda: Srad(SradConfig(n=48, iterations=2)),
     [Mode.GPM, Mode.CAP_MM, Mode.GPM_EPOCH, Mode.GPM_RELAXED]),
    # BFS frontier expansion: ragged neighbour gathers, first-claim scatter
    # races, and the chained visit-order atomics.
    ("bfs", lambda: GraphBfs(BfsConfig(rows=16, cols=24, engine="kernel",
                                       shortcut_fraction=0.01)),
     [Mode.GPM, Mode.CAP_MM, Mode.GPM_EPOCH, Mode.GPM_RELAXED]),
    # gpDB INSERT: coalesced appends + thread 0's metadata-log entry.
    ("db-insert", lambda: GpDb("insert", DbConfig(
        capacity_rows=2048, initial_rows=512, insert_batch=256,
        insert_batches=2, block_dim=64)),
     [Mode.GPM, Mode.CAP_MM, Mode.GPM_EPOCH, Mode.GPM_RELAXED]),
    # gpDB UPDATE: scattered kernel-computed rows HCL-logged before the
    # two-column writes.
    ("db-update", lambda: GpDb("update", DbConfig(
        capacity_rows=2048, initial_rows=1024, update_batch=192,
        update_batches=2, block_dim=64)),
     [Mode.GPM, Mode.CAP_MM, Mode.GPM_EPOCH, Mode.GPM_RELAXED]),
    # A tiny non-power-of-two row count (lanes 24 apart hit the same row):
    # the Fibonacci stride collides inside a warp, forcing the
    # lane-at-a-time hazard fallback.
    ("db-update-collide", lambda: GpDb("update", DbConfig(
        capacity_rows=2048, initial_rows=24, update_batch=64,
        update_batches=2, block_dim=64)),
     [Mode.GPM]),
    # The conventional-log ablation: per-lane serialised appends.
    ("db-update-conv", lambda: GpDb("update", DbConfig(
        capacity_rows=2048, initial_rows=1024, update_batch=192,
        update_batches=1, block_dim=64, use_hcl=False)),
     [Mode.GPM]),
]

PARAMS = [
    pytest.param(factory, mode, id=f"{label}-{mode.value}")
    for label, factory, modes in CASES
    for mode in modes
]


@pytest.mark.parametrize("factory,mode", PARAMS)
def test_lanes_are_bit_identical(factory, mode):
    ws_s, rs, ev_s, regions_s, _ = _run_collected(factory, mode, True)
    ws_w, rw, ev_w, regions_w, _ = _run_collected(factory, mode, False)
    # Identical launch outcome and golden-report record.
    assert rs.elapsed == rw.elapsed
    assert result_to_record(rs) == result_to_record(rw)
    # Identical event streams, timestamps included.
    assert ev_s == ev_w
    # Identical memory state: every surviving region, both images.
    assert regions_s.keys() == regions_w.keys()
    for name in regions_s:
        vis_s, per_s = regions_s[name]
        vis_w, per_w = regions_w[name]
        assert np.array_equal(vis_s, vis_w), f"visible image differs: {name}"
        if per_s is None or per_w is None:
            assert per_s is per_w, f"persistence kind differs: {name}"
        else:
            assert np.array_equal(per_s, per_w), f"persisted image differs: {name}"


@pytest.mark.parametrize("factory,mode", PARAMS)
def test_lane_attribution(factory, mode):
    ws_w, *_ = _run_collected(factory, mode, False)
    assert ws_w._last_lane == "warp"
    ws_s, *_ = _run_collected(factory, mode, True)
    assert ws_s._last_lane == "scalar"


def test_conventional_log_ablation_stays_scalar():
    # Fig. 11a's lock-serialised log depends on per-thread interleaving.
    ws = GpKvs(KvsConfig(n_sets=512, batch_size=128, set_batches=1,
                         use_hcl=False))
    ws.run(Mode.GPM)
    assert ws._last_lane == "scalar"


def test_crash_injector_forces_scalar_lane():
    # repro.check's recorders arrive through the crash_injector parameter;
    # an armed injector must always get the reference interpreter.
    assert resolve_warp_impl(partial_sums_kernel) is not None
    assert resolve_warp_impl(set_kernel) is not None
    assert resolve_warp_impl(pricing_kernel) is not None
    assert resolve_warp_impl(bfs_kernel) is not None
    assert resolve_warp_impl(srad_plane_kernel) is not None
    assert resolve_warp_impl(insert_kernel) is not None
    assert resolve_warp_impl(update_kernel) is not None
    assert resolve_warp_impl(select_kernel) is not None
    assert resolve_warp_impl(update_recovery_kernel) is not None
    ws = PrefixSum(PrefixSumConfig(n=1024, block_dim=256))
    system = make_system(Mode.GPM)
    injector = CrashInjector(system.machine)
    lanes = []
    orig = system.gpu.launch

    def spy(*args, **kwargs):
        res = orig(*args, **kwargs)
        lanes.append(res.lane)
        return res

    system.gpu.launch = spy
    ws.run(Mode.GPM, system=system, crash_injector=injector)
    assert lanes and all(lane == "scalar" for lane in lanes)


def test_forced_scalar_env(monkeypatch):
    # REPRO_SCALAR_LANE is the process-wide escape hatch (used by CI and
    # forked check workers); the module flag mirrors it at import time.
    import repro.gpu.warp as warp

    monkeypatch.setattr(warp, "_scalar_only", True)
    assert resolve_warp_impl(partial_sums_kernel) is None


LITMUS_PARITY_POINTS = [
    # Every fence policy and data path the generated kernels can exercise.
    "strict:window:adr", "epoch:window:adr", "relaxed:nowindow:adr",
    "adaptive:window:adr", "eadr:window:adr",
]


def _run_litmus_collected(index, spec, forced_scalar):
    from repro.check.litmus import (
        REGION_BYTES,
        build_kernels,
        build_model,
        generate_test,
        parse_config_point,
    )
    from repro.core.persist import persist_window
    from repro.system import System

    test = generate_test(7, index)
    point = parse_config_point(spec)
    system = System(persistency=build_model(point))
    regions = [system.machine.alloc_pm(f"/pm/litmus{i}", REGION_BYTES)
               for i in range(test.n_regions)]
    kernel = build_kernels(test, regions)
    events = []
    system.events.subscribe(lambda ts, ev: events.append(event_to_record(ts, ev)))

    def launch():
        if point.window:
            with persist_window(system):
                return system.gpu.launch(kernel, 1, test.n_threads)
        return system.gpu.launch(kernel, 1, test.n_threads)

    if forced_scalar:
        with scalar_lane():
            result = launch()
    else:
        result = launch()
    images = [(r.visible.copy(), r.persisted.copy()) for r in regions]
    return result, events, images


@pytest.mark.parametrize("index", range(4))
@pytest.mark.parametrize("spec", LITMUS_PARITY_POINTS)
def test_litmus_kernels_lane_parity(index, spec):
    # Satellite of the litmus fuzzer: every generated kernel registers a
    # warp twin via @vectorized_for, and the two lanes must agree on the
    # full timestamped event stream and both memory images, byte for byte.
    rs, ev_s, img_s = _run_litmus_collected(index, spec, True)
    rw, ev_w, img_w = _run_litmus_collected(index, spec, False)
    assert rs.lane == "scalar" and rw.lane == "warp"
    assert rs.elapsed == rw.elapsed
    assert ev_s == ev_w
    for (vis_s, per_s), (vis_w, per_w) in zip(img_s, img_w):
        assert np.array_equal(vis_s, vis_w)
        assert np.array_equal(per_s, per_w)


def test_litmus_generated_kernels_register_warp_impl():
    from repro.check.litmus import REGION_BYTES, build_kernels, generate_tests
    from repro.system import System

    for test in generate_tests(7, 8):
        system = System()
        regions = [system.machine.alloc_pm(f"/pm/l{i}", REGION_BYTES)
                   for i in range(test.n_regions)]
        assert resolve_warp_impl(build_kernels(test, regions)) is not None


def test_check_frontiers_match_either_lane():
    # repro.check must explore the same frontier count whether or not warp
    # implementations are registered: recording runs under an armed
    # recorder (scalar), and only invariant-side re-runs use the warp lane.
    from repro.check import explore

    report_default = explore("prefix_sum", Mode.GPM, max_frontiers=4)
    with scalar_lane():
        report_scalar = explore("prefix_sum", Mode.GPM, max_frontiers=4)
    assert report_default.frontiers_recorded == report_scalar.frontiers_recorded
    assert len(report_default.results) == len(report_scalar.results)
    for a, b in zip(report_default.results, report_scalar.results):
        assert a.status == b.status

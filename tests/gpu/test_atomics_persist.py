"""Atomics go through the metered persist path and survive crashes."""

import numpy as np

from repro.core.persist import persist_window


class TestAtomicPersistence:
    def test_atomic_add_then_persist_survives_crash(self, system):
        pm = system.machine.alloc_pm("pm", 4096)

        def kernel(ctx):
            ctx.atomic_add(pm, 0, 1, dtype=np.int64)
            ctx.persist()

        with persist_window(system):
            system.gpu.launch(kernel, 1, 64)
        assert int(pm.view(np.int64, 0, 1)[0]) == 64
        system.machine.crash()
        assert int(pm.view(np.int64, 0, 1)[0]) == 64

    def test_atomic_cas_and_max_persist(self, system):
        pm = system.machine.alloc_pm("pm", 4096)

        def kernel(ctx):
            ctx.atomic_max(pm, 0, ctx.global_id, dtype=np.int64)
            ctx.atomic_cas(pm, 8, 0, 42, dtype=np.int64)
            ctx.persist()

        with persist_window(system):
            system.gpu.launch(kernel, 1, 32)
        system.machine.crash()
        assert int(pm.view(np.int64, 0, 1)[0]) == 31
        assert int(pm.view(np.int64, 8, 1)[0]) == 42

    def test_unfenced_atomic_lost_without_eadr(self, system):
        """An atomic without a fence parks in the LLC and dies with it."""
        pm = system.machine.alloc_pm("pm", 4096)

        def kernel(ctx):
            ctx.atomic_add(pm, 0, 1, dtype=np.int64)

        # DDIO stays on: the drain at warp retirement stops at the LLC.
        system.gpu.launch(kernel, 1, 32)
        assert int(pm.view(np.int64, 0, 1)[0]) == 32
        system.machine.crash()
        assert int(pm.view(np.int64, 0, 1)[0]) == 0

    def test_atomic_traffic_is_metered(self, system):
        pm = system.machine.alloc_pm("pm", 4096)

        def kernel(ctx):
            ctx.atomic_add(pm, ctx.global_id * 8, 5, dtype=np.int64)
            ctx.persist()

        with persist_window(system):
            result = system.gpu.launch(kernel, 1, 32)
        acct = result.accounting
        # RMW: 8 B read and 8 B write per thread over the link.
        assert acct.host_read_bytes == 32 * 8
        assert acct.host_write_bytes == 32 * 8
        assert result.stats_delta.pm_bytes_written == 32 * 8

"""DeviceArray: typed windows, bounds, metered vs unmetered access."""

import numpy as np
import pytest

from repro.gpu import DeviceArray


@pytest.fixture
def pm(system):
    return system.machine.alloc_pm("p", 1024)


class TestLayout:
    def test_count_inferred(self, pm):
        a = DeviceArray(pm, np.uint32)
        assert len(a) == 256
        assert a.nbytes == 1024

    def test_offset_window(self, pm):
        a = DeviceArray(pm, np.uint64, offset=512)
        assert len(a) == 64
        assert a.byte_offset(0) == 512
        assert a.byte_offset(1) == 520

    def test_explicit_count(self, pm):
        a = DeviceArray(pm, np.uint32, offset=0, count=10)
        assert len(a) == 10

    def test_count_too_large_rejected(self, pm):
        with pytest.raises(ValueError):
            DeviceArray(pm, np.uint32, offset=1000, count=100)

    def test_index_bounds(self, pm):
        a = DeviceArray(pm, np.uint32, count=4)
        with pytest.raises(IndexError):
            a.byte_offset(4)
        with pytest.raises(IndexError):
            a.byte_offset(-1)


class TestMeteredAccess:
    def test_read_write_roundtrip(self, system, pm):
        a = DeviceArray(pm, np.uint32)
        out = []

        def k(ctx, arr):
            arr.write(ctx, ctx.global_id, ctx.global_id * 2)
            out.append(int(arr.read(ctx, ctx.global_id)))

        system.gpu.launch(k, 1, 32, (a,))
        assert out == [i * 2 for i in range(32)]

    def test_vector_ops(self, system, pm):
        a = DeviceArray(pm, np.uint32)

        def k(ctx, arr):
            if ctx.global_id == 0:
                arr.write_vec(ctx, 0, np.arange(8, dtype=np.uint32))
                got = arr.read_vec(ctx, 0, 8)
                assert list(got) == list(range(8))

        system.gpu.launch(k, 1, 32, (a,))
        assert list(a.np[:8]) == list(range(8))

    def test_vector_overrun_rejected(self, system, pm):
        a = DeviceArray(pm, np.uint32, count=4)

        def k(ctx, arr):
            if ctx.global_id == 0:
                arr.write_vec(ctx, 2, np.zeros(4, dtype=np.uint32))

        with pytest.raises(IndexError):
            system.gpu.launch(k, 1, 1, (a,))


class TestUnmeteredAccess:
    def test_np_is_live_view(self, pm):
        a = DeviceArray(pm, np.uint32)
        a.np[0] = 77
        assert pm.view(np.uint32, 0, 1)[0] == 77

    def test_np_persisted_requires_pm(self, system):
        hbm = system.machine.alloc_hbm("h", 64)
        a = DeviceArray(hbm, np.uint32)
        with pytest.raises(TypeError):
            a.np_persisted

"""Dim3 and thread-identity math."""

import pytest

from repro.gpu.hierarchy import Dim3, ThreadId, warps_in_block, warps_in_grid


class TestDim3:
    def test_of_int(self):
        assert Dim3.of(8) == Dim3(8, 1, 1)

    def test_of_tuple(self):
        assert Dim3.of((2, 3)) == Dim3(2, 3, 1)
        assert Dim3.of((2, 3, 4)) == Dim3(2, 3, 4)

    def test_of_dim3_identity(self):
        d = Dim3(4)
        assert Dim3.of(d) is d

    def test_count(self):
        assert Dim3(2, 3, 4).count == 24

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            Dim3(0)

    def test_flatten_unflatten_roundtrip(self):
        d = Dim3(3, 4, 5)
        for flat in range(d.count):
            assert d.flatten(*d.unflatten(flat)) == flat

    def test_x_fastest(self):
        d = Dim3(4, 4)
        assert d.flatten(1, 0, 0) == 1
        assert d.flatten(0, 1, 0) == 4

    def test_iter(self):
        assert tuple(Dim3(1, 2, 3)) == (1, 2, 3)


class TestThreadId:
    def _tid(self, block_flat, thread_flat, block_dim=128, grid=4):
        return ThreadId(Dim3(grid), Dim3(block_dim), block_flat, thread_flat)

    def test_global_id(self):
        assert self._tid(0, 5).global_id == 5
        assert self._tid(2, 5).global_id == 2 * 128 + 5

    def test_lane(self):
        assert self._tid(0, 33).lane == 1
        assert self._tid(0, 31).lane == 31

    def test_warp_in_block(self):
        assert self._tid(0, 31).warp_in_block == 0
        assert self._tid(0, 32).warp_in_block == 1

    def test_warp_global(self):
        assert self._tid(1, 0).warp_global == 4  # 128/32 warps per block
        assert self._tid(1, 96).warp_global == 7

    def test_multidim_indices(self):
        tid = ThreadId(Dim3(2, 2), Dim3(4, 4), 3, 5)
        assert tid.block_idx == (1, 1, 0)
        assert tid.thread_idx == (1, 1, 0)


class TestWarpCounts:
    def test_exact_multiple(self):
        assert warps_in_block(Dim3(64)) == 2

    def test_partial_warp_rounds_up(self):
        assert warps_in_block(Dim3(33)) == 2

    def test_grid(self):
        assert warps_in_grid(Dim3(3), Dim3(64)) == 6

"""Engine-level bulk operations: stream_copy, scatter_store_bulk, compute."""

import numpy as np
import pytest

from repro.gpu import DeviceArray


class TestStreamCopy:
    def test_hbm_to_pm_copies_and_persists(self, system):
        system.machine.set_ddio(False)
        hbm = system.machine.alloc_hbm("h", 4096)
        pm = system.machine.alloc_pm("p", 4096)
        hbm.view(np.uint8)[:] = 42
        t = system.gpu.stream_copy(pm, 0, hbm, 0, 4096, persist=True)
        assert t > 0
        assert (pm.persisted_view(np.uint8) == 42).all()

    def test_pm_to_hbm_restore(self, system):
        hbm = system.machine.alloc_hbm("h", 4096)
        pm = system.machine.alloc_pm("p", 4096)
        pm.view(np.uint8)[:] = 9
        system.gpu.stream_copy(hbm, 0, pm, 0, 4096)
        assert (hbm.view(np.uint8) == 9).all()

    def test_hbm_to_hbm(self, system):
        a = system.machine.alloc_hbm("a", 4096)
        b = system.machine.alloc_hbm("b", 4096)
        a.view(np.uint8)[:] = 3
        t = system.gpu.stream_copy(b, 0, a, 0, 4096)
        assert (b.view(np.uint8) == 3).all()
        assert t > 0

    def test_bandwidth_bound_large_copy(self, system):
        system.machine.set_ddio(False)
        hbm = system.machine.alloc_hbm("h", 4 << 20)
        pm = system.machine.alloc_pm("p", 4 << 20)
        t = system.gpu.stream_copy(pm, 0, hbm, 0, 4 << 20, persist=True)
        # must beat the flush-grain path by a wide margin (streaming)
        assert (4 << 20) / t > 9e9

    def test_negative_size_rejected(self, system):
        hbm = system.machine.alloc_hbm("h", 64)
        pm = system.machine.alloc_pm("p", 64)
        with pytest.raises(ValueError):
            system.gpu.stream_copy(pm, 0, hbm, 0, -1)

    def test_offsets_respected(self, system):
        hbm = system.machine.alloc_hbm("h", 256)
        pm = system.machine.alloc_pm("p", 256)
        hbm.view(np.uint8)[10:20] = 7
        system.gpu.stream_copy(pm, 100, hbm, 10, 10)
        assert (pm.view(np.uint8, 100, 10) == 7).all()


class TestScatterStoreBulk:
    def test_functional_scatter(self, system):
        system.machine.set_ddio(False)
        pm = system.machine.alloc_pm("p", 4096)
        offs = np.array([0, 100, 200])
        vals = np.array([1, 2, 3], dtype=np.uint32)
        system.gpu.scatter_store_bulk(pm, offs, vals, item_bytes=4)
        assert pm.view(np.uint32, 0, 1)[0] == 1
        assert pm.view(np.uint32, 100, 1)[0] == 2
        assert pm.view(np.uint32, 200, 1)[0] == 3
        assert pm.unpersisted_bytes() == 0  # fenced, DDIO off

    def test_empty_scatter_costs_launch_only(self, system):
        pm = system.machine.alloc_pm("p", 64)
        t = system.gpu.scatter_store_bulk(pm, np.array([], dtype=np.int64),
                                          np.array([], dtype=np.uint32), 4)
        assert t == pytest.approx(system.config.gpu_kernel_launch_s)

    def test_contiguous_cheaper_than_scattered(self, system):
        system.machine.set_ddio(False)
        pm = system.machine.alloc_pm("p", 1 << 20)
        n = 1024
        vals = np.arange(n, dtype=np.uint32)
        t_dense = system.gpu.scatter_store_bulk(
            pm, np.arange(n, dtype=np.int64) * 4, vals, 4)
        t_sparse = system.gpu.scatter_store_bulk(
            pm, np.arange(n, dtype=np.int64) * 512, vals, 4)
        assert t_sparse > 2 * t_dense

    def test_hbm_target_is_cheap(self, system):
        hbm = system.machine.alloc_hbm("h", 1 << 20)
        n = 1024
        t = system.gpu.scatter_store_bulk(
            hbm, np.arange(n, dtype=np.int64) * 512,
            np.arange(n, dtype=np.uint32), 4)
        assert t < 2 * system.config.gpu_kernel_launch_s

    def test_value_size_mismatch_rejected(self, system):
        pm = system.machine.alloc_pm("p", 64)
        with pytest.raises(ValueError):
            system.gpu.scatter_store_bulk(pm, np.array([0, 8]),
                                          np.array([1], dtype=np.uint32), 4)

    def test_matches_per_thread_kernel_semantics(self, system):
        """The bulk path must persist the same bytes a real kernel would."""
        system.machine.set_ddio(False)
        pm = system.machine.alloc_pm("p", 8192)
        offs = (np.arange(64, dtype=np.int64) * 12)  # unaligned stride
        vals = np.arange(64, dtype=np.uint32) + 1
        system.gpu.scatter_store_bulk(pm, offs, vals, 4)
        for i in range(64):
            assert pm.persisted_view(np.uint32, int(offs[i]), 1)[0] == i + 1


class TestCompute:
    def test_advances_clock(self, system):
        t = system.gpu.compute(1_000_000)
        assert system.clock.now == pytest.approx(t)
        assert t > system.config.gpu_kernel_launch_s

    def test_active_threads_limits_parallelism(self, system):
        fast = system.gpu.compute(10_000_000)
        slow = system.gpu.compute(10_000_000, active_threads=64)
        assert slow > fast


class TestStoreAndPersistValue:
    def test_durable_single_word(self, system):
        system.machine.set_ddio(False)
        pm = system.machine.alloc_pm("p", 64)
        t = system.gpu.store_and_persist_value(pm, 0, 0xDEAD, np.uint32)
        assert t >= system.config.pcie_rtt_s
        assert pm.persisted_view(np.uint32, 0, 1)[0] == 0xDEAD

    def test_ddio_on_not_durable(self, system):
        pm = system.machine.alloc_pm("p", 64)
        system.gpu.store_and_persist_value(pm, 0, 7, np.uint32)
        assert pm.persisted_view(np.uint32, 0, 1)[0] == 0

    def test_eadr_effectively_durable(self, eadr_system):
        pm = eadr_system.machine.alloc_pm("p", 64)
        eadr_system.gpu.store_and_persist_value(pm, 0, 7, np.uint32)
        eadr_system.crash()
        assert pm.view(np.uint32, 0, 1)[0] == 7

"""The SIMT kernel engine: execution, coalescing, fences, barriers, crash."""

import numpy as np
import pytest

from repro.gpu import DeviceArray, GpuFault
from repro.sim import CrashInjector, SimulatedCrash


def _pm_array(system, size=1 << 16, dtype=np.uint32, name="pm"):
    region = system.machine.alloc_pm(name, size)
    return DeviceArray(region, dtype)


class TestExecution:
    def test_every_thread_runs_once(self, system):
        arr = _pm_array(system)

        def k(ctx, a):
            a.write(ctx, ctx.global_id, 1)

        res = system.gpu.launch(k, 4, 64, (arr,))
        assert res.threads == 256
        assert arr.np[:256].sum() == 256

    def test_grid_and_block_identities(self, system):
        arr = _pm_array(system)

        def k(ctx, a):
            a.write(ctx, ctx.global_id, ctx.block_id * 1000 + ctx.thread_in_block)

        system.gpu.launch(k, 2, 32, (arr,))
        assert arr.np[0] == 0
        assert arr.np[33] == 1001

    def test_block_limit(self, system):
        with pytest.raises(GpuFault):
            system.gpu.launch(lambda ctx: None, 1, 1025)

    def test_kernel_count_stat(self, system):
        system.gpu.launch(lambda ctx: None, 1, 32)
        assert system.stats.kernels_launched == 1

    def test_elapsed_positive_and_clock_advances(self, system):
        res = system.gpu.launch(lambda ctx: None, 1, 32)
        assert res.elapsed >= system.config.gpu_kernel_launch_s
        assert system.clock.now == pytest.approx(res.elapsed)


class TestCoalescing:
    def test_warp_adjacent_4b_stores_coalesce_into_one_tx(self, system):
        arr = _pm_array(system)
        system.machine.set_ddio(False)

        def k(ctx, a):
            a.write(ctx, ctx.global_id, 7)
            ctx.persist()

        res = system.gpu.launch(k, 1, 32, (arr,))
        # 32 x 4 B adjacent = 128 B = exactly one PCIe transaction
        assert res.accounting.host_write_tx == 1

    def test_scattered_stores_do_not_coalesce(self, system):
        arr = _pm_array(system)
        system.machine.set_ddio(False)

        def k(ctx, a):
            a.write(ctx, ctx.global_id * 64, 7)  # 256 B apart
            ctx.persist()

        res = system.gpu.launch(k, 1, 32, (arr,))
        assert res.accounting.host_write_tx == 32

    def test_coalesced_cheaper_than_scattered(self, system):
        arr = _pm_array(system, size=1 << 18, name="a")
        arr2 = DeviceArray(system.machine.alloc_pm("b", 1 << 18), np.uint32)
        system.machine.set_ddio(False)

        def dense(ctx, a):
            a.write(ctx, ctx.global_id, 7)
            ctx.persist()

        def sparse(ctx, a):
            a.write(ctx, ctx.global_id * 64, 7)
            ctx.persist()

        t_dense = system.gpu.launch(dense, 4, 128, (arr,)).elapsed
        t_sparse = system.gpu.launch(sparse, 4, 128, (arr2,)).elapsed
        assert t_sparse > 2 * t_dense

    def test_hbm_stores_are_not_host_traffic(self, system):
        hbm = system.machine.alloc_hbm("h", 4096)
        arr = DeviceArray(hbm, np.uint32)

        def k(ctx, a):
            a.write(ctx, ctx.global_id, 1)

        res = system.gpu.launch(k, 1, 32, (arr,))
        assert res.accounting.host_write_tx == 0
        assert res.accounting.hbm_write_bytes == 128


class TestFences:
    def test_persist_with_ddio_off_is_durable(self, system):
        arr = _pm_array(system)
        system.machine.set_ddio(False)

        def k(ctx, a):
            a.write(ctx, ctx.global_id, ctx.global_id)
            ctx.persist()

        system.gpu.launch(k, 2, 64, (arr,))
        assert (arr.np_persisted[:128] == np.arange(128)).all()

    def test_persist_with_ddio_on_is_not_durable(self, system):
        arr = _pm_array(system)

        def k(ctx, a):
            a.write(ctx, ctx.global_id, 5)
            ctx.persist()

        system.gpu.launch(k, 2, 64, (arr,))
        assert not arr.np_persisted[:128].any()
        system.crash()
        assert not arr.np[:128].any()

    def test_unfenced_writes_visible_but_delivered_at_warp_retire(self, system):
        arr = _pm_array(system)
        system.machine.set_ddio(False)

        def k(ctx, a):
            a.write(ctx, ctx.global_id, 9)  # no fence

        res = system.gpu.launch(k, 1, 32, (arr,))
        assert (arr.np[:32] == 9).all()
        assert (arr.np_persisted[:32] == 9).all()  # eventual drain
        assert res.accounting.max_warp_rounds == 0  # no fence rounds charged

    def test_fence_rounds_counted_per_thread(self, system):
        arr = _pm_array(system)
        system.machine.set_ddio(False)

        def k(ctx, a):
            for j in range(3):
                a.write(ctx, ctx.global_id + j * 1024, j)
                ctx.persist()

        res = system.gpu.launch(k, 1, 32, (arr,))
        assert res.accounting.max_warp_rounds == 3
        assert res.accounting.fences == 96

    def test_fence_chain_bounds_elapsed(self, system):
        arr = _pm_array(system)
        system.machine.set_ddio(False)
        rounds = 10

        def k(ctx, a):
            for j in range(rounds):
                a.write(ctx, ctx.global_id, j)
                ctx.persist()

        res = system.gpu.launch(k, 1, 32, (arr,))
        assert res.elapsed >= rounds * system.config.pcie_rtt_s

    def test_device_scope_fence_gives_no_durability(self, system):
        arr = _pm_array(system)
        system.machine.set_ddio(False)

        def k(ctx, a):
            a.write(ctx, ctx.global_id, 1)
            ctx.threadfence()  # device scope: visibility only

        res = system.gpu.launch(k, 1, 32, (arr,))
        assert res.accounting.max_warp_rounds == 0


class TestBarriers:
    def test_generator_kernel_barrier_ordering(self, system):
        arr = _pm_array(system)

        def k(ctx, a):
            a.write(ctx, ctx.global_id, 1)
            yield
            if ctx.thread_in_block == 0:
                # after the barrier every thread's store must be visible
                total = sum(int(a.np[i]) for i in range(ctx.block_dim))
                a.write(ctx, 1000 + ctx.block_id, total)

        system.gpu.launch(k, 2, 64, (arr,))
        assert arr.np[1000] == 64
        assert arr.np[1001] == 64

    def test_generator_kernel_multiple_barriers(self, system):
        arr = _pm_array(system)
        trace = []

        def k(ctx, a):
            trace.append(("p1", ctx.global_id))
            yield
            trace.append(("p2", ctx.global_id))
            yield
            trace.append(("p3", ctx.global_id))

        system.gpu.launch(k, 1, 8, (arr,))
        phases = [p for p, _ in trace]
        assert phases == ["p1"] * 8 + ["p2"] * 8 + ["p3"] * 8


class TestAtomics:
    def test_atomic_add_returns_old(self, system):
        hbm = system.machine.alloc_hbm("h", 64)
        arr = DeviceArray(hbm, np.int64)
        seen = []

        def k(ctx, a):
            seen.append(int(a.atomic_add(ctx, 0, 1)))

        system.gpu.launch(k, 1, 64, (arr,))
        assert sorted(seen) == list(range(64))
        assert arr.np[0] == 64

    def test_atomic_cas(self, system):
        hbm = system.machine.alloc_hbm("h", 64)
        arr = DeviceArray(hbm, np.int64)
        wins = []

        def k(ctx, a):
            if int(a.atomic_cas(ctx, 0, 0, ctx.global_id + 1)) == 0:
                wins.append(ctx.global_id)

        system.gpu.launch(k, 1, 32, (arr,))
        assert len(wins) == 1
        assert arr.np[0] == wins[0] + 1

    def test_atomic_max(self, system):
        hbm = system.machine.alloc_hbm("h", 64)
        arr = DeviceArray(hbm, np.int64)

        def k(ctx, a):
            a.atomic_max(ctx, 0, (ctx.global_id * 7) % 50)

        system.gpu.launch(k, 1, 64, (arr,))
        assert arr.np[0] == max((i * 7) % 50 for i in range(64))


class TestCrashDuringKernel:
    def test_crash_loses_in_flight_warp(self, system):
        arr = _pm_array(system)
        system.machine.set_ddio(False)

        def k(ctx, a):
            a.write(ctx, ctx.global_id, 1)
            ctx.persist()

        inj = CrashInjector(system.machine)
        inj.arm(40)  # mid second warp
        with pytest.raises(SimulatedCrash):
            system.gpu.launch(k, 1, 128, (arr,), crash_injector=inj)
        # first warp delivered and durable; second warp's batch lost
        assert (arr.np[:32] == 1).all()
        assert not arr.np[32:128].any()

    def test_crash_charges_partial_time(self, system):
        arr = _pm_array(system)
        inj = CrashInjector(system.machine)
        inj.arm(1)

        def k(ctx, a):
            a.write(ctx, ctx.global_id, 1)
            ctx.persist()

        with pytest.raises(SimulatedCrash):
            system.gpu.launch(k, 8, 128, (arr,), crash_injector=inj)
        assert system.clock.now > 0


class TestChargeSerial:
    def test_serial_time_floors_elapsed(self, system):
        def k(ctx):
            ctx.charge_serial_time(1e-3)

        res = system.gpu.launch(k, 1, 32)
        assert res.elapsed >= 1e-3

    def test_serial_time_is_max_not_sum(self, system):
        def k(ctx):
            ctx.charge_serial_time(1e-4)

        res = system.gpu.launch(k, 1, 64)
        assert res.accounting.serial_time == pytest.approx(1e-4)


class TestSharedMemory:
    def test_shared_is_per_block(self, system):
        arr = _pm_array(system)

        def k(ctx, a):
            ctx.shared.setdefault("count", [0])
            ctx.shared["count"][0] += 1
            if ctx.thread_in_block == ctx.block_dim - 1:
                a.write(ctx, ctx.block_id, ctx.shared["count"][0])

        system.gpu.launch(k, 3, 32, (arr,))
        assert list(arr.np[:3]) == [32, 32, 32]

    def test_shared_factory(self, system):
        arr = _pm_array(system)

        def k(ctx, a):
            a.write(ctx, ctx.block_id, ctx.shared["tag"])

        system.gpu.launch(k, 2, 32, (arr,),
                          shared_factory=lambda b: {"tag": 100 + b})
        assert list(arr.np[:2]) == [100, 101]
